//! AXI-like transaction types.
//!
//! The simulator abstracts AMBA AXI4 to the transaction level: a request is
//! one address-channel handshake plus its burst of data beats; a response
//! marks the completion of the last beat. The properties that matter for
//! QoS — burst length, direction, per-master outstanding limits, and the
//! point at which back-pressure is applied (the address handshake) — are
//! preserved.

use crate::time::Cycle;
use std::fmt;

/// Width of the data bus in bytes (128-bit AXI, as on Zynq US+ HP ports).
pub const BEAT_BYTES: u64 = 16;

/// Maximum AXI4 burst length in beats.
pub const MAX_BURST_BEATS: u16 = 256;

/// Identifies one master port on the interconnect.
///
/// Master ids are dense indices assigned by
/// [`SocBuilder`](crate::system::SocBuilder) in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MasterId(usize);

impl MasterId {
    /// Creates a master id from its dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        MasterId(index)
    }

    /// Returns the dense index of this master.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Transfer direction of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Read transaction (AR channel + R beats).
    Read,
    /// Write transaction (AW channel + W beats + B response).
    Write,
}

impl Dir {
    /// Returns `true` for [`Dir::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, Dir::Read)
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dir::Read => "R",
            Dir::Write => "W",
        })
    }
}

/// One in-flight AXI transaction (address handshake + burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Issuing master port.
    pub master: MasterId,
    /// Per-master transaction serial number (monotonic).
    pub serial: u64,
    /// Byte address of the first beat.
    pub addr: u64,
    /// Burst length in data beats (1..=[`MAX_BURST_BEATS`]).
    pub beats: u16,
    /// Transfer direction.
    pub dir: Dir,
    /// Cycle at which the master first presented the address handshake
    /// (before any gating). Latency is measured from here.
    pub issued_at: Cycle,
    /// Cycle at which the request was accepted into the interconnect
    /// (after regulation and FIFO admission).
    pub accepted_at: Cycle,
}

impl Request {
    /// Creates a request presented at `issued_at`.
    ///
    /// # Panics
    ///
    /// Panics if `beats` is zero or exceeds [`MAX_BURST_BEATS`].
    pub fn new(
        master: MasterId,
        serial: u64,
        addr: u64,
        beats: u16,
        dir: Dir,
        issued_at: Cycle,
    ) -> Self {
        assert!(
            (1..=MAX_BURST_BEATS).contains(&beats),
            "burst length must be 1..={MAX_BURST_BEATS}, got {beats}"
        );
        Request {
            master,
            serial,
            addr,
            beats,
            dir,
            issued_at,
            accepted_at: issued_at,
        }
    }

    /// Total payload of this transaction in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.beats as u64 * BEAT_BYTES
    }
}

/// Completion record of a [`Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// The completed request.
    pub request: Request,
    /// Cycle of the final data beat (read) or write acknowledgement.
    pub completed_at: Cycle,
}

impl Response {
    /// End-to-end latency in cycles, from first handshake attempt to
    /// completion. This includes any regulation stall time.
    #[inline]
    pub fn latency(&self) -> u64 {
        self.completed_at.cycles_since(self.request.issued_at)
    }

    /// Latency from interconnect acceptance to completion (excludes
    /// regulation stalls; this is the "memory system" latency).
    #[inline]
    pub fn service_latency(&self) -> u64 {
        self.completed_at.cycles_since(self.request.accepted_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(beats: u16) -> Request {
        Request::new(MasterId::new(0), 0, 0x1000, beats, Dir::Read, Cycle::new(5))
    }

    #[test]
    fn request_bytes() {
        assert_eq!(req(1).bytes(), 16);
        assert_eq!(req(16).bytes(), 256);
        assert_eq!(req(256).bytes(), 4096);
    }

    #[test]
    #[should_panic(expected = "burst length")]
    fn zero_beats_rejected() {
        let _ = req(0);
    }

    #[test]
    #[should_panic(expected = "burst length")]
    fn oversized_burst_rejected() {
        let _ = req(257);
    }

    #[test]
    fn response_latencies() {
        let mut r = req(4);
        r.accepted_at = Cycle::new(9);
        let resp = Response {
            request: r,
            completed_at: Cycle::new(30),
        };
        assert_eq!(resp.latency(), 25);
        assert_eq!(resp.service_latency(), 21);
    }

    #[test]
    fn display_impls() {
        assert_eq!(MasterId::new(3).to_string(), "M3");
        assert_eq!(Dir::Read.to_string(), "R");
        assert_eq!(Dir::Write.to_string(), "W");
    }
}
