//! Event tracing: a bounded in-memory event sink with Chrome/Perfetto
//! export.
//!
//! A [`Trace`] is an append-only log of timestamped simulation events.
//! Tracing is opt-in and intended for diagnostic runs; the hot
//! simulation path does not touch it unless a component is explicitly
//! wrapped (see [`TracingGate`]), so the fast-forward core stays
//! allocation-free and bit-identical when tracing is off (proptest-guarded
//! in `tests/observability.rs`, like `FGQOS_NAIVE=1`).
//!
//! Captured traces export to the Chrome trace-event JSON format via
//! [`ChromeTraceBuilder`] (or the [`Soc::chrome_trace`] convenience),
//! which Perfetto and `chrome://tracing` load directly: transactions
//! become duration slices, gate decisions become instant events and
//! per-window byte series become counter tracks. See
//! `docs/observability.md` for the capture walkthrough.
//!
//! [`Soc::chrome_trace`]: crate::system::Soc::chrome_trace

use crate::axi::{MasterId, Request, Response};
use crate::gate::{GateDecision, PortGate};
use crate::json::Value;
use crate::time::{Cycle, Freq};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Default event capacity of a [`Trace`] (2^20 events ≈ 24 MiB).
///
/// Long diagnostic runs used to grow the log without bound; the log now
/// stops recording at its cap and counts further events in
/// [`Trace::dropped`] instead, so a forgotten trace handle can no longer
/// exhaust memory.
pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A gate admitted a request.
    Accepted {
        /// Port whose gate decided.
        master: MasterId,
        /// Per-master request serial number.
        serial: u64,
    },
    /// A gate denied a request (regulation stall).
    Denied {
        /// Port whose gate decided.
        master: MasterId,
        /// Per-master request serial number.
        serial: u64,
    },
    /// A transaction completed.
    Completed {
        /// Port that issued the transaction.
        master: MasterId,
        /// Per-master request serial number.
        serial: u64,
    },
}

#[derive(Debug)]
struct TraceLog {
    events: Vec<(Cycle, TraceEvent)>,
    max_events: usize,
    dropped: u64,
}

/// Shared, bounded, append-only event log.
///
/// Cloning a `Trace` clones the handle, not the log. The log holds at
/// most [`Trace::max_events`] events ([`DEFAULT_MAX_EVENTS`] unless set
/// via [`Trace::with_max_events`]); once full, new events are counted in
/// [`Trace::dropped`] and discarded.
#[derive(Debug, Clone)]
pub struct Trace {
    log: Rc<RefCell<TraceLog>>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// Creates an empty trace with the [`DEFAULT_MAX_EVENTS`] cap.
    pub fn new() -> Self {
        Trace::with_max_events(DEFAULT_MAX_EVENTS)
    }

    /// Creates an empty trace that keeps at most `max_events` events.
    ///
    /// # Panics
    ///
    /// Panics if `max_events` is zero.
    pub fn with_max_events(max_events: usize) -> Self {
        assert!(max_events > 0, "trace capacity must be non-zero");
        Trace {
            log: Rc::new(RefCell::new(TraceLog {
                events: Vec::new(),
                max_events,
                dropped: 0,
            })),
        }
    }

    /// The configured event capacity.
    pub fn max_events(&self) -> usize {
        self.log.borrow().max_events
    }

    /// Number of events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.log.borrow().dropped
    }

    /// Appends an event, or counts it as dropped once the log is full.
    pub fn push(&self, now: Cycle, event: TraceEvent) {
        let mut log = self.log.borrow_mut();
        if log.events.len() < log.max_events {
            log.events.push((now, event));
        } else {
            log.dropped += 1;
        }
    }

    /// Snapshot of all recorded events in order.
    pub fn events(&self) -> Vec<(Cycle, TraceEvent)> {
        self.log.borrow().events.clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.log.borrow().events.len()
    }

    /// `true` when no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of events matching `predicate`.
    pub fn count_matching(&self, predicate: impl Fn(&TraceEvent) -> bool) -> usize {
        self.log
            .borrow()
            .events
            .iter()
            .filter(|(_, e)| predicate(e))
            .count()
    }
}

/// A [`PortGate`] decorator that records accept/deny decisions into a
/// [`Trace`] while delegating to an inner gate.
#[derive(Debug)]
pub struct TracingGate<G> {
    inner: G,
    trace: Trace,
}

impl<G: PortGate> TracingGate<G> {
    /// Wraps `inner`, recording into `trace`.
    pub fn new(inner: G, trace: Trace) -> Self {
        TracingGate { inner, trace }
    }

    /// Returns the inner gate.
    pub fn into_inner(self) -> G {
        self.inner
    }
}

impl<G: PortGate> PortGate for TracingGate<G> {
    fn on_cycle(&mut self, now: Cycle) {
        self.inner.on_cycle(now);
    }

    fn try_accept(&mut self, request: &Request, now: Cycle) -> GateDecision {
        let d = self.inner.try_accept(request, now);
        let ev = match d {
            GateDecision::Accept => TraceEvent::Accepted {
                master: request.master,
                serial: request.serial,
            },
            GateDecision::Deny => TraceEvent::Denied {
                master: request.master,
                serial: request.serial,
            },
        };
        self.trace.push(now, ev);
        d
    }

    fn on_complete(&mut self, response: &Response, now: Cycle) {
        self.trace.push(
            now,
            TraceEvent::Completed {
                master: response.request.master,
                serial: response.request.serial,
            },
        );
        self.inner.on_complete(response, now);
    }

    // `next_activity` deliberately keeps the conservative `Some(now)`
    // default rather than forwarding to the inner gate: the trace records
    // one `Denied` event per retry cycle, so a traced port must execute
    // every cycle to keep its event stream identical to naive stepping.

    fn on_denied_skip(&mut self, cycles: u64) {
        self.inner.on_denied_skip(cycles);
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn collect_metrics(&self, prefix: &str, registry: &mut crate::metrics::MetricsRegistry) {
        self.inner.collect_metrics(prefix, registry);
    }
}

/// Schema identifier embedded in every exported Chrome trace.
pub const CHROME_TRACE_SCHEMA: &str = "fgqos.chrome-trace";
/// Schema version embedded in every exported Chrome trace.
pub const CHROME_TRACE_VERSION: u64 = 1;

/// Assembles a Chrome trace-event JSON document from simulator events.
///
/// Timestamps are cycles converted to microseconds at the SoC clock.
/// The output loads in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing`:
///
/// * each master is a named thread (`tid` = master index, `pid` 0),
/// * completed transactions are `"ph": "X"` duration slices from gate
///   acceptance to completion,
/// * gate decisions are `"ph": "i"` instant events (`accept`/`deny`),
/// * per-window byte series are `"ph": "C"` counter tracks.
///
/// ```
/// use fgqos_sim::time::{Cycle, Freq};
/// use fgqos_sim::trace::{ChromeTraceBuilder, Trace, TraceEvent};
/// use fgqos_sim::axi::MasterId;
///
/// let trace = Trace::new();
/// let m = MasterId::new(0);
/// trace.push(Cycle::new(0), TraceEvent::Accepted { master: m, serial: 1 });
/// trace.push(Cycle::new(40), TraceEvent::Completed { master: m, serial: 1 });
///
/// let mut b = ChromeTraceBuilder::new(Freq::ghz(1));
/// b.thread_name(0, "dma0");
/// b.add_trace(&trace);
/// let doc = b.finish();
/// assert!(doc.get("traceEvents").is_some());
/// ```
#[derive(Debug)]
pub struct ChromeTraceBuilder {
    freq: Freq,
    events: Vec<Value>,
}

impl ChromeTraceBuilder {
    /// Starts a builder converting cycles at clock `freq`.
    pub fn new(freq: Freq) -> Self {
        ChromeTraceBuilder {
            freq,
            events: Vec::new(),
        }
    }

    fn ts(&self, cycle: Cycle) -> Value {
        Value::from(self.freq.cycles_to_us(cycle.get()))
    }

    /// Names the Perfetto thread for master index `tid` (metadata event).
    pub fn thread_name(&mut self, tid: usize, name: &str) {
        let mut args = Value::obj();
        args.set("name", Value::str(name));
        let mut ev = Value::obj();
        ev.set("name", Value::str("thread_name"));
        ev.set("ph", Value::str("M"));
        ev.set("pid", Value::from(0u64));
        ev.set("tid", Value::from(tid));
        ev.set("args", args);
        self.events.push(ev);
    }

    /// Converts a [`Trace`] into slices and instant events.
    ///
    /// `Accepted`/`Denied` become instant events on the master's thread;
    /// each `Accepted`→`Completed` pair additionally becomes one duration
    /// slice spanning the transaction's time in flight.
    pub fn add_trace(&mut self, trace: &Trace) {
        let mut accepted_at: HashMap<(usize, u64), Cycle> = HashMap::new();
        for (cycle, event) in trace.events() {
            match event {
                TraceEvent::Accepted { master, serial } => {
                    accepted_at.insert((master.index(), serial), cycle);
                    self.instant("accept", "gate", master.index(), cycle, serial);
                }
                TraceEvent::Denied { master, serial } => {
                    self.instant("deny", "gate", master.index(), cycle, serial);
                }
                TraceEvent::Completed { master, serial } => {
                    match accepted_at.remove(&(master.index(), serial)) {
                        Some(start) => self.slice(master.index(), start, cycle, serial),
                        // Completion without a traced acceptance (e.g. the
                        // trace was attached mid-flight): keep it visible.
                        None => self.instant("complete", "txn", master.index(), cycle, serial),
                    }
                }
            }
        }
    }

    fn instant(&mut self, name: &str, cat: &str, tid: usize, cycle: Cycle, serial: u64) {
        let mut args = Value::obj();
        args.set("serial", Value::from(serial));
        args.set("cycle", Value::from(cycle.get()));
        let mut ev = Value::obj();
        ev.set("name", Value::str(name));
        ev.set("cat", Value::str(cat));
        ev.set("ph", Value::str("i"));
        ev.set("s", Value::str("t"));
        ev.set("ts", self.ts(cycle));
        ev.set("pid", Value::from(0u64));
        ev.set("tid", Value::from(tid));
        ev.set("args", args);
        self.events.push(ev);
    }

    fn slice(&mut self, tid: usize, start: Cycle, end: Cycle, serial: u64) {
        let mut args = Value::obj();
        args.set("serial", Value::from(serial));
        args.set("cycles", Value::from(end.get() - start.get()));
        let mut ev = Value::obj();
        ev.set("name", Value::str("txn"));
        ev.set("cat", Value::str("txn"));
        ev.set("ph", Value::str("X"));
        ev.set("ts", self.ts(start));
        ev.set(
            "dur",
            Value::from(self.freq.cycles_to_us(end.get() - start.get())),
        );
        ev.set("pid", Value::from(0u64));
        ev.set("tid", Value::from(tid));
        ev.set("args", args);
        self.events.push(ev);
    }

    /// Emits a `"ph": "C"` counter track named `track`, one sample per
    /// closed window of `window_cycles` cycles.
    pub fn add_counter_track(&mut self, track: &str, window_cycles: u64, windows: &[u64]) {
        for (i, &v) in windows.iter().enumerate() {
            let cycle = Cycle::new(i as u64 * window_cycles);
            let mut args = Value::obj();
            args.set("bytes", Value::from(v));
            let mut ev = Value::obj();
            ev.set("name", Value::str(track));
            ev.set("ph", Value::str("C"));
            ev.set("ts", self.ts(cycle));
            ev.set("pid", Value::from(0u64));
            ev.set("args", args);
            self.events.push(ev);
        }
    }

    /// Finalizes the document (`displayTimeUnit`, schema metadata and the
    /// `traceEvents` array).
    pub fn finish(self) -> Value {
        let mut other = Value::obj();
        other.set("schema", Value::str(CHROME_TRACE_SCHEMA));
        other.set("version", Value::from(CHROME_TRACE_VERSION));
        let mut doc = Value::obj();
        doc.set("displayTimeUnit", Value::str("ns"));
        doc.set("otherData", other);
        doc.set("traceEvents", Value::Arr(self.events));
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axi::Dir;
    use crate::gate::OpenGate;

    #[test]
    fn tracing_gate_records_decisions() {
        let trace = Trace::new();
        let mut g = TracingGate::new(OpenGate, trace.clone());
        let r = Request::new(MasterId::new(0), 7, 0, 1, Dir::Read, Cycle::ZERO);
        assert!(g.try_accept(&r, Cycle::new(3)).is_accept());
        let resp = Response {
            request: r,
            completed_at: Cycle::new(50),
        };
        g.on_complete(&resp, Cycle::new(50));
        let events = trace.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            (
                Cycle::new(3),
                TraceEvent::Accepted {
                    master: MasterId::new(0),
                    serial: 7
                }
            )
        );
        assert_eq!(
            events[1],
            (
                Cycle::new(50),
                TraceEvent::Completed {
                    master: MasterId::new(0),
                    serial: 7
                }
            )
        );
        assert_eq!(
            trace.count_matching(|e| matches!(e, TraceEvent::Denied { .. })),
            0
        );
        assert!(!trace.is_empty());
    }

    #[test]
    fn trace_caps_and_counts_dropped() {
        let trace = Trace::with_max_events(3);
        for i in 0..10u64 {
            trace.push(
                Cycle::new(i),
                TraceEvent::Accepted {
                    master: MasterId::new(0),
                    serial: i,
                },
            );
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped(), 7);
        assert_eq!(trace.max_events(), 3);
        // The first three events were kept, not the last three.
        assert_eq!(trace.events()[2].0, Cycle::new(2));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn trace_rejects_zero_capacity() {
        let _ = Trace::with_max_events(0);
    }

    #[test]
    fn chrome_export_pairs_slices() {
        let trace = Trace::new();
        let m = MasterId::new(1);
        trace.push(
            Cycle::new(10),
            TraceEvent::Accepted {
                master: m,
                serial: 5,
            },
        );
        trace.push(
            Cycle::new(12),
            TraceEvent::Denied {
                master: m,
                serial: 6,
            },
        );
        trace.push(
            Cycle::new(70),
            TraceEvent::Completed {
                master: m,
                serial: 5,
            },
        );
        trace.push(
            Cycle::new(80),
            TraceEvent::Completed {
                master: m,
                serial: 99,
            },
        );

        let mut b = ChromeTraceBuilder::new(Freq::ghz(1));
        b.thread_name(1, "dma1");
        b.add_trace(&trace);
        b.add_counter_track("window_bytes/dma1", 100, &[256, 0, 512]);
        let doc = b.finish();

        let other = doc.get("otherData").unwrap();
        assert_eq!(
            other.get("schema").unwrap().as_str(),
            Some(CHROME_TRACE_SCHEMA)
        );
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        // metadata, accept, deny, slice, orphan complete, 3 counters.
        assert_eq!(phases, ["M", "i", "i", "X", "i", "C", "C", "C"]);
        let slice = &events[3];
        assert_eq!(slice.get("ts").unwrap().as_f64(), Some(0.01));
        assert_eq!(slice.get("dur").unwrap().as_f64(), Some(0.06));
        assert_eq!(
            slice.get("args").unwrap().get("cycles").unwrap().as_u64(),
            Some(60)
        );
        // Round-trips through the parser.
        let text = doc.to_pretty();
        assert_eq!(Value::parse(&text).unwrap(), doc);
    }
}
