//! Lightweight event tracing for debugging and test assertions.
//!
//! A [`Trace`] is an append-only log of timestamped simulation events.
//! Tracing is opt-in and intended for short diagnostic runs; the hot
//! simulation path does not touch it unless a component is explicitly
//! wrapped (see [`TracingGate`]).

use crate::axi::{MasterId, Request, Response};
use crate::gate::{GateDecision, PortGate};
use crate::time::Cycle;
use std::cell::RefCell;
use std::rc::Rc;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A gate admitted a request.
    Accepted { master: MasterId, serial: u64 },
    /// A gate denied a request (regulation stall).
    Denied { master: MasterId, serial: u64 },
    /// A transaction completed.
    Completed { master: MasterId, serial: u64 },
}

/// Shared, append-only event log.
///
/// Cloning a `Trace` clones the handle, not the log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Rc<RefCell<Vec<(Cycle, TraceEvent)>>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&self, now: Cycle, event: TraceEvent) {
        self.events.borrow_mut().push((now, event));
    }

    /// Snapshot of all recorded events in order.
    pub fn events(&self) -> Vec<(Cycle, TraceEvent)> {
        self.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// `true` when no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of events matching `predicate`.
    pub fn count_matching(&self, predicate: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events
            .borrow()
            .iter()
            .filter(|(_, e)| predicate(e))
            .count()
    }
}

/// A [`PortGate`] decorator that records accept/deny decisions into a
/// [`Trace`] while delegating to an inner gate.
#[derive(Debug)]
pub struct TracingGate<G> {
    inner: G,
    trace: Trace,
}

impl<G: PortGate> TracingGate<G> {
    /// Wraps `inner`, recording into `trace`.
    pub fn new(inner: G, trace: Trace) -> Self {
        TracingGate { inner, trace }
    }

    /// Returns the inner gate.
    pub fn into_inner(self) -> G {
        self.inner
    }
}

impl<G: PortGate> PortGate for TracingGate<G> {
    fn on_cycle(&mut self, now: Cycle) {
        self.inner.on_cycle(now);
    }

    fn try_accept(&mut self, request: &Request, now: Cycle) -> GateDecision {
        let d = self.inner.try_accept(request, now);
        let ev = match d {
            GateDecision::Accept => TraceEvent::Accepted {
                master: request.master,
                serial: request.serial,
            },
            GateDecision::Deny => TraceEvent::Denied {
                master: request.master,
                serial: request.serial,
            },
        };
        self.trace.push(now, ev);
        d
    }

    fn on_complete(&mut self, response: &Response, now: Cycle) {
        self.trace.push(
            now,
            TraceEvent::Completed {
                master: response.request.master,
                serial: response.request.serial,
            },
        );
        self.inner.on_complete(response, now);
    }

    // `next_activity` deliberately keeps the conservative `Some(now)`
    // default rather than forwarding to the inner gate: the trace records
    // one `Denied` event per retry cycle, so a traced port must execute
    // every cycle to keep its event stream identical to naive stepping.

    fn on_denied_skip(&mut self, cycles: u64) {
        self.inner.on_denied_skip(cycles);
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axi::Dir;
    use crate::gate::OpenGate;

    #[test]
    fn tracing_gate_records_decisions() {
        let trace = Trace::new();
        let mut g = TracingGate::new(OpenGate, trace.clone());
        let r = Request::new(MasterId::new(0), 7, 0, 1, Dir::Read, Cycle::ZERO);
        assert!(g.try_accept(&r, Cycle::new(3)).is_accept());
        let resp = Response {
            request: r,
            completed_at: Cycle::new(50),
        };
        g.on_complete(&resp, Cycle::new(50));
        let events = trace.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            (
                Cycle::new(3),
                TraceEvent::Accepted {
                    master: MasterId::new(0),
                    serial: 7
                }
            )
        );
        assert_eq!(
            events[1],
            (
                Cycle::new(50),
                TraceEvent::Completed {
                    master: MasterId::new(0),
                    serial: 7
                }
            )
        );
        assert_eq!(
            trace.count_matching(|e| matches!(e, TraceEvent::Denied { .. })),
            0
        );
        assert!(!trace.is_empty());
    }
}
