//! Cached CPU model.
//!
//! The critical actors of the paper run on the ARM host cluster, behind
//! caches: only their *misses* reach the shared DRAM. [`Cache`] is a
//! set-associative write-back, write-allocate cache model and
//! [`CachedSource`] wraps any CPU-side access stream (a
//! [`TrafficSource`] generating load/store addresses) so that the master
//! issues only line fills and dirty write-backs to the memory system —
//! the traffic shape that makes a task "compute-dominated" without
//! hand-tuning think times.

use crate::axi::{Dir, Response, BEAT_BYTES};
use crate::master::{PendingRequest, TrafficSource};
use crate::time::Cycle;
use fgqos_snap::{ForkCtx, StateHasher};
use std::collections::VecDeque;

/// Geometry and timing of a [`Cache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (must be a multiple of the beat size).
    pub line_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Cycles a hit costs the core.
    pub hit_latency: u64,
}

impl Default for CacheConfig {
    /// A 32 KiB, 4-way, 64 B-line L1 with a 4-cycle hit.
    fn default() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 4,
            hit_latency: 4,
        }
    }
}

impl CacheConfig {
    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() || !self.line_bytes.is_multiple_of(BEAT_BYTES) {
            return Err(format!(
                "line_bytes must be a power of two multiple of {BEAT_BYTES}"
            ));
        }
        if self.ways == 0 {
            return Err("ways must be non-zero".into());
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.line_bytes) {
            return Err("size must be a whole number of lines".into());
        }
        let lines = self.size_bytes / self.line_bytes;
        if lines == 0 || !lines.is_multiple_of(self.ways as u64) {
            return Err("size must hold a whole number of sets".into());
        }
        let sets = lines / self.ways as u64;
        if !sets.is_power_of_two() {
            return Err("number of sets must be a power of two".into());
        }
        Ok(())
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / self.ways as u64
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line must be fetched; a dirty victim (if any) must be written
    /// back first.
    Miss {
        /// Address of the dirty line to write back, if one was evicted.
        writeback: Option<u64>,
    },
}

/// Counters of a [`Cache`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit ratio over all accesses (0.0 when none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Set-associative, write-back, write-allocate cache with LRU
/// replacement.
///
/// ```
/// use fgqos_sim::cpu::{Cache, CacheConfig, CacheOutcome};
///
/// let mut c = Cache::new(CacheConfig::default());
/// assert!(matches!(c.access(0x1000, false), CacheOutcome::Miss { .. }));
/// assert_eq!(c.access(0x1000, false), CacheOutcome::Hit);
/// assert_eq!(c.access(0x1020, false), CacheOutcome::Hit); // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid CacheConfig: {e}");
        }
        let sets = (0..cfg.sets())
            .map(|_| {
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        lru: 0
                    };
                    cfg.ways
                ]
            })
            .collect();
        Cache {
            cfg,
            sets,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        let set = (line % self.cfg.sets()) as usize;
        let tag = line / self.cfg.sets();
        (set, tag)
    }

    /// Address of the first byte of the line containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr - addr % self.cfg.line_bytes
    }

    /// Feeds the full cache state (geometry, every line, LRU clock,
    /// counters) into a snapshot fingerprint stream.
    pub fn snap(&self, h: &mut StateHasher) {
        h.section("cache");
        h.write_u64(self.cfg.size_bytes);
        h.write_u64(self.cfg.line_bytes);
        h.write_usize(self.cfg.ways);
        h.write_u64(self.cfg.hit_latency);
        h.write_u64(self.tick);
        h.write_u64(self.stats.hits);
        h.write_u64(self.stats.misses);
        h.write_u64(self.stats.writebacks);
        for set in &self.sets {
            for line in set {
                h.write_u64(line.tag);
                h.write_bool(line.valid);
                h.write_bool(line.dirty);
                h.write_u64(line.lru);
            }
        }
    }

    /// Performs one access; `is_write` marks the line dirty on hit or
    /// fill (write-allocate).
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.tick += 1;
        let (set_idx, tag) = self.locate(addr);
        let sets = self.cfg.sets();
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            set[way].lru = self.tick;
            set[way].dirty |= is_write;
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }
        self.stats.misses += 1;
        // Victim: invalid way first, else LRU.
        let victim = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("ways is non-zero")
        });
        let evicted = set[victim];
        let writeback = if evicted.valid && evicted.dirty {
            self.stats.writebacks += 1;
            Some((evicted.tag * sets + set_idx as u64) * self.cfg.line_bytes)
        } else {
            None
        };
        set[victim] = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.tick,
        };
        CacheOutcome::Miss { writeback }
    }
}

/// Wraps a CPU-side access stream behind a [`Cache`], emitting only the
/// DRAM traffic (line fills and dirty write-backs).
///
/// The inner source's requests are interpreted as *core accesses*
/// (their `beats`/size are ignored beyond the address; `dir` marks
/// loads vs. stores). The wrapper models a blocking in-order core: hits
/// advance a local time cursor by the hit latency, the miss under
/// service blocks the core until its fill returns.
#[derive(Clone)]
pub struct CachedSource<S> {
    inner: S,
    cache: Cache,
    cursor: Cycle,
    queue: VecDeque<PendingRequest>,
    accesses_done: u64,
}

impl<S: TrafficSource> CachedSource<S> {
    /// Wraps `inner` behind a cache with configuration `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(inner: S, cfg: CacheConfig) -> Self {
        CachedSource {
            inner,
            cache: Cache::new(cfg),
            cursor: Cycle::ZERO,
            queue: VecDeque::new(),
            accesses_done: 0,
        }
    }

    /// The cache model (for statistics).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Core accesses processed so far (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.accesses_done
    }

    fn line_request(&self, addr: u64, dir: Dir, not_before: Cycle) -> PendingRequest {
        PendingRequest {
            addr,
            beats: (self.cache.config().line_bytes / BEAT_BYTES) as u16,
            dir,
            not_before,
        }
    }
}

impl<S: TrafficSource + Clone + 'static> TrafficSource for CachedSource<S> {
    fn next_request(&mut self, now: Cycle) -> Option<PendingRequest> {
        if let Some(p) = self.queue.pop_front() {
            return Some(p);
        }
        // Process core accesses until a miss produces DRAM traffic or the
        // core's local time passes `now` (hits are absorbed here).
        while self.cursor <= now {
            let access = self.inner.next_request(self.cursor.max(now))?;
            self.cursor = self.cursor.max(access.not_before);
            self.accesses_done += 1;
            let hit_latency = self.cache.config().hit_latency;
            match self.cache.access(access.addr, !access.dir.is_read()) {
                CacheOutcome::Hit => {
                    self.cursor += hit_latency;
                }
                CacheOutcome::Miss { writeback } => {
                    self.cursor += hit_latency;
                    let fill_addr = self.cache.line_addr(access.addr);
                    let fill = self.line_request(fill_addr, Dir::Read, self.cursor);
                    if let Some(wb) = writeback {
                        self.queue
                            .push_back(self.line_request(wb, Dir::Write, self.cursor));
                    }
                    return Some(fill);
                }
            }
        }
        None
    }

    fn on_complete(&mut self, response: &Response, _now: Cycle) {
        // The blocking core resumes when its fill returns; write-backs
        // drain in the background.
        if response.request.dir.is_read() {
            self.cursor = self.cursor.max(response.completed_at);
        }
    }

    fn is_done(&self) -> bool {
        self.inner.is_done() && self.queue.is_empty()
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.queue.is_empty() {
            // A queued write-back can be handed out any cycle.
            Some(now)
        } else if self.inner.is_done() {
            None
        } else {
            // Pulls while the core's local time is ahead of `now` return
            // `None` without touching any state; the first mutating pull
            // happens once the cursor is reached.
            Some(self.cursor.max(now))
        }
    }

    fn fork_source(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn TrafficSource>> {
        Some(Box::new(self.clone()))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("cached-source");
        self.inner.snap_state(h);
        self.cache.snap(h);
        h.write_u64(self.cursor.get());
        h.write_usize(self.queue.len());
        for p in &self.queue {
            h.write_u64(p.addr);
            h.write_u16(p.beats);
            h.write_bool(p.dir == Dir::Write);
            h.write_u64(p.not_before.get());
        }
        h.write_u64(self.accesses_done);
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for CachedSource<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedSource")
            .field("inner", &self.inner)
            .field("cursor", &self.cursor)
            .field("queued", &self.queue.len())
            .field("stats", self.cache.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::SequentialSource;

    fn tiny_cache() -> CacheConfig {
        // 2 sets x 2 ways x 64 B lines = 256 B.
        CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
            hit_latency: 2,
        }
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::default().validate().is_ok());
        assert!(CacheConfig {
            line_bytes: 48,
            ..CacheConfig::default()
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            ways: 0,
            ..CacheConfig::default()
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 96,
            line_bytes: 64,
            ways: 1,
            hit_latency: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn hit_after_fill_same_line() {
        let mut c = Cache::new(tiny_cache());
        assert!(matches!(
            c.access(0x100, false),
            CacheOutcome::Miss { writeback: None }
        ));
        assert_eq!(c.access(0x100, false), CacheOutcome::Hit);
        assert_eq!(c.access(0x13f, false), CacheOutcome::Hit); // same 64B line
        assert_ne!(c.access(0x140, false), CacheOutcome::Hit); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_and_dirty_writeback() {
        let mut c = Cache::new(tiny_cache());
        // Set 0 holds lines with line_index % 2 == 0: addresses 0, 128, 256...
        assert!(matches!(
            c.access(0, true),
            CacheOutcome::Miss { writeback: None }
        ));
        assert!(matches!(
            c.access(128, false),
            CacheOutcome::Miss { writeback: None }
        ));
        // Third distinct line in set 0 evicts LRU (addr 0, dirty).
        match c.access(256, false) {
            CacheOutcome::Miss {
                writeback: Some(wb),
            } => assert_eq!(wb, 0),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
        // Clean eviction produces no writeback.
        assert!(matches!(
            c.access(384, false),
            CacheOutcome::Miss { writeback: None }
        ));
    }

    #[test]
    fn lru_order_respects_recency() {
        let mut c = Cache::new(tiny_cache());
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // touch 0: now 128 is LRU
        c.access(256, false); // evicts 128
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        assert_ne!(c.access(128, false), CacheOutcome::Hit);
    }

    #[test]
    fn cached_source_filters_hits() {
        // 16 sequential 64 B accesses over a 256 B footprint: after the
        // first 4 fills everything hits.
        let inner = SequentialSource::reads(0, 64, 64).with_footprint(256);
        let mut src = CachedSource::new(inner, tiny_cache());
        let mut fills = 0;
        let mut now = Cycle::ZERO;
        #[allow(clippy::explicit_counter_loop)]
        for _ in 0..100_000 {
            if let Some(p) = src.next_request(now) {
                assert_eq!(p.dir, Dir::Read);
                fills += 1;
                // Pretend the fill completes quickly.
                let req = crate::axi::Request::new(
                    crate::axi::MasterId::new(0),
                    fills,
                    p.addr,
                    p.beats,
                    p.dir,
                    now,
                );
                src.on_complete(
                    &Response {
                        request: req,
                        completed_at: now + 50,
                    },
                    now + 50,
                );
            }
            if src.is_done() {
                break;
            }
            now += 1;
        }
        assert!(src.is_done(), "source must drain");
        assert_eq!(fills, 4, "only the four distinct lines should miss");
        assert_eq!(src.accesses(), 64);
        assert_eq!(src.cache().stats().hits, 60);
    }

    #[test]
    fn cached_source_emits_writebacks_for_dirty_evictions() {
        // Streaming writes over a footprint larger than the cache: every
        // line is eventually evicted dirty.
        let inner = SequentialSource::writes(0, 64, 16);
        let mut src = CachedSource::new(inner, tiny_cache());
        let mut reads = 0;
        let mut writes = 0;
        let mut now = Cycle::ZERO;
        #[allow(clippy::explicit_counter_loop)]
        for _ in 0..100_000 {
            if let Some(p) = src.next_request(now) {
                match p.dir {
                    Dir::Read => reads += 1,
                    Dir::Write => writes += 1,
                }
                let req = crate::axi::Request::new(
                    crate::axi::MasterId::new(0),
                    (reads + writes) as u64,
                    p.addr,
                    p.beats,
                    p.dir,
                    now,
                );
                src.on_complete(
                    &Response {
                        request: req,
                        completed_at: now + 50,
                    },
                    now + 50,
                );
            }
            if src.is_done() {
                break;
            }
            now += 1;
        }
        assert_eq!(reads, 16, "every distinct line misses once");
        // 16 lines filled into a 4-line cache, all dirty: 12 evictions.
        assert_eq!(writes, 12);
        assert_eq!(src.cache().stats().writebacks, 12);
    }

    #[test]
    #[should_panic(expected = "invalid CacheConfig")]
    fn invalid_config_panics() {
        let _ = Cache::new(CacheConfig {
            ways: 0,
            ..CacheConfig::default()
        });
    }
}
