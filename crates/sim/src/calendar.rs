//! Hierarchical event calendar: a timing wheel over near cycles plus a
//! sorted heap for far wakes.
//!
//! The fast-path simulation loop (see [`crate::system::Soc`]) keeps one
//! calendar token per schedulable component — each master (which folds in
//! its gate's window edges and its source's issue points), the DRAM
//! controller (bank timing, bus drain, refresh) and every software
//! controller. A token's *wake* is the earliest cycle at which ticking
//! that component could change simulation state; the calendar answers
//! "which cycle executes next?" and "who is due now?" without scanning
//! every component.
//!
//! Near wakes (within [`NEAR_SLOTS`] cycles of the cursor) land in a
//! circular slot array indexed by `cycle % NEAR_SLOTS`; far wakes go to a
//! min-heap and migrate into the wheel as the cursor approaches. The
//! `wake` array is authoritative: superseded wheel/heap entries are
//! detected lazily (entry cycle ≠ current wake) and dropped when visited,
//! so reschedules are O(1) instead of requiring removal.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Width of the timing wheel in cycles. Events scheduled further out than
/// this from the cursor wait in the far heap. Sized to cover the common
/// event horizon of the memory path (bank timings, burst drains, DRAM
/// queue turnaround) so steady-state traffic never touches the heap.
pub const NEAR_SLOTS: usize = 256;

/// Wake cycle meaning "never".
pub const NEVER: u64 = u64::MAX;

/// A timing-wheel + far-heap event calendar over dense component tokens.
///
/// ```
/// use fgqos_sim::calendar::{EventCalendar, NEVER};
///
/// let mut cal = EventCalendar::new(3, 0);
/// cal.set(0, 5);
/// cal.set(1, 5);
/// cal.set(2, 100_000); // far future: heap
/// assert_eq!(cal.next_due(0), Some(5));
/// let mut due = Vec::new();
/// cal.take_due(5, &mut due);
/// assert_eq!(due, [0, 1]);
/// assert_eq!(cal.wake_of(0), NEVER); // taken tokens must be rescheduled
/// assert_eq!(cal.next_due(6), Some(100_000));
/// ```
#[derive(Debug)]
pub struct EventCalendar {
    /// Authoritative earliest-wake per token; `NEVER` = unscheduled.
    wake: Vec<u64>,
    /// Circular near-window slots of `(cycle, token)` entries.
    near: Vec<Vec<(u64, u32)>>,
    /// Far events, min-ordered by `(cycle, token)`.
    far: BinaryHeap<Reverse<(u64, u32)>>,
    /// Cycle the wheel window starts at; slots cover
    /// `[cursor, cursor + NEAR_SLOTS)`.
    cursor: u64,
}

impl EventCalendar {
    /// Creates a calendar for `tokens` components with all wakes at
    /// `NEVER`, its wheel starting at cycle `start`.
    pub fn new(tokens: usize, start: u64) -> Self {
        EventCalendar {
            wake: vec![NEVER; tokens],
            near: (0..NEAR_SLOTS).map(|_| Vec::new()).collect(),
            far: BinaryHeap::new(),
            cursor: start,
        }
    }

    /// The authoritative wake of `token` (`NEVER` when unscheduled).
    #[inline]
    pub fn wake_of(&self, token: u32) -> u64 {
        self.wake[token as usize]
    }

    /// Schedules `token` at exactly `cycle`, superseding any previous
    /// wake (earlier or later — stale entries are dropped lazily).
    pub fn set(&mut self, token: u32, cycle: u64) {
        if self.wake[token as usize] == cycle {
            return; // already scheduled here; avoid duplicate entries
        }
        self.wake[token as usize] = cycle;
        if cycle == NEVER {
            return;
        }
        self.insert(cycle, token);
    }

    /// Schedules `token` at `cycle` only if that is earlier than its
    /// current wake.
    pub fn set_min(&mut self, token: u32, cycle: u64) {
        if cycle < self.wake[token as usize] {
            self.set(token, cycle);
        }
    }

    /// Unschedules `token`.
    pub fn clear(&mut self, token: u32) {
        self.wake[token as usize] = NEVER;
    }

    fn insert(&mut self, cycle: u64, token: u32) {
        debug_assert!(cycle >= self.cursor, "cannot schedule in the past");
        if cycle - self.cursor < NEAR_SLOTS as u64 {
            self.near[(cycle % NEAR_SLOTS as u64) as usize].push((cycle, token));
        } else {
            self.far.push(Reverse((cycle, token)));
        }
    }

    /// Migrates far-heap entries that now fall inside the wheel window.
    fn refill_near(&mut self) {
        let horizon = self.cursor + NEAR_SLOTS as u64;
        while let Some(&Reverse((cycle, token))) = self.far.peek() {
            if self.wake[token as usize] != cycle {
                self.far.pop(); // superseded
                continue;
            }
            if cycle >= horizon {
                break;
            }
            self.far.pop();
            self.near[(cycle % NEAR_SLOTS as u64) as usize].push((cycle, token));
        }
    }

    /// Earliest cycle `>= now` at which any token is due, or `None` when
    /// nothing is scheduled. Advances the wheel cursor to `now`, pruning
    /// stale entries as it scans.
    pub fn next_due(&mut self, now: u64) -> Option<u64> {
        debug_assert!(now >= self.cursor, "time cannot move backwards");
        self.cursor = now;
        self.refill_near();
        // Scan the wheel window slot by slot for the earliest live entry.
        let mut best: Option<u64> = None;
        for offset in 0..NEAR_SLOTS as u64 {
            let cycle_at = now + offset;
            let slot = &mut self.near[(cycle_at % NEAR_SLOTS as u64) as usize];
            if slot.is_empty() {
                continue;
            }
            let wake = &self.wake;
            slot.retain(|&(c, t)| c >= now && wake[t as usize] == c);
            if let Some(c) = slot
                .iter()
                .map(|&(c, _)| c)
                .filter(|&c| c.wrapping_sub(now) < NEAR_SLOTS as u64)
                .min()
            {
                best = Some(best.map_or(c, |b| b.min(c)));
                if c == cycle_at {
                    // Nothing in later slots can beat an exact hit here.
                    break;
                }
            }
        }
        if best.is_some() {
            return best;
        }
        // Wheel empty: the answer lives in the far heap (if anywhere).
        while let Some(&Reverse((cycle, token))) = self.far.peek() {
            if self.wake[token as usize] != cycle {
                self.far.pop();
                continue;
            }
            return Some(cycle);
        }
        None
    }

    /// Collects every token due at exactly `now` into `out` (ascending
    /// token order) and marks them taken (`wake = NEVER`): the caller
    /// ticks them and re-schedules from their fresh `next_activity`.
    pub fn take_due(&mut self, now: u64, out: &mut Vec<u32>) {
        out.clear();
        debug_assert!(now >= self.cursor, "time cannot move backwards");
        self.cursor = now;
        self.refill_near();
        let slot = &mut self.near[(now % NEAR_SLOTS as u64) as usize];
        let wake = &mut self.wake;
        slot.retain(|&(c, t)| {
            if c == now && wake[t as usize] == now {
                wake[t as usize] = NEVER;
                out.push(t);
                false
            } else {
                c > now && wake[t as usize] == c
            }
        });
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn due_at(cal: &mut EventCalendar, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        cal.take_due(now, &mut out);
        out
    }

    #[test]
    fn near_and_far_scheduling() {
        let mut cal = EventCalendar::new(4, 0);
        cal.set(0, 3);
        cal.set(1, 300); // beyond the wheel: far heap
        cal.set(2, 70_000);
        assert_eq!(cal.next_due(0), Some(3));
        assert_eq!(due_at(&mut cal, 3), [0]);
        assert_eq!(cal.next_due(4), Some(300));
        assert_eq!(due_at(&mut cal, 300), [1]);
        assert_eq!(cal.next_due(301), Some(70_000));
        assert_eq!(due_at(&mut cal, 70_000), [2]);
        assert_eq!(cal.next_due(70_001), None);
    }

    #[test]
    fn reschedule_supersedes_lazily() {
        let mut cal = EventCalendar::new(2, 0);
        cal.set(0, 10);
        cal.set(0, 5); // earlier
        assert_eq!(cal.next_due(0), Some(5));
        assert_eq!(due_at(&mut cal, 5), [0]);
        // The stale entry at 10 must not resurface.
        assert_eq!(cal.next_due(6), None);

        cal.set(1, 20);
        cal.set(1, 40); // later: old entry at 20 is stale
        assert_eq!(cal.next_due(6), Some(40));
        assert!(due_at(&mut cal, 20).is_empty());
        assert_eq!(due_at(&mut cal, 40), [1]);
    }

    #[test]
    fn set_min_keeps_earlier_wake() {
        let mut cal = EventCalendar::new(1, 0);
        cal.set(0, 8);
        cal.set_min(0, 12); // no-op
        assert_eq!(cal.wake_of(0), 8);
        cal.set_min(0, 4);
        assert_eq!(cal.next_due(0), Some(4));
    }

    #[test]
    fn duplicate_set_same_cycle_fires_once() {
        let mut cal = EventCalendar::new(1, 0);
        cal.set(0, 7);
        cal.set(0, 7);
        assert_eq!(due_at(&mut cal, 7), [0]);
        assert_eq!(cal.next_due(8), None);
    }

    #[test]
    fn clear_unschedules() {
        let mut cal = EventCalendar::new(2, 0);
        cal.set(0, 9);
        cal.set(1, 500);
        cal.clear(0);
        cal.clear(1);
        assert_eq!(cal.next_due(0), None);
        assert!(due_at(&mut cal, 9).is_empty());
    }

    #[test]
    fn take_due_returns_tokens_sorted() {
        let mut cal = EventCalendar::new(5, 0);
        for t in [4u32, 1, 3, 0] {
            cal.set(t, 11);
        }
        assert_eq!(due_at(&mut cal, 11), [0, 1, 3, 4]);
    }

    #[test]
    fn wheel_wraparound_does_not_alias() {
        let mut cal = EventCalendar::new(2, 0);
        // Two wakes NEAR_SLOTS apart share a slot index.
        cal.set(0, 10);
        cal.set(1, 10 + NEAR_SLOTS as u64);
        assert_eq!(cal.next_due(0), Some(10));
        assert_eq!(due_at(&mut cal, 10), [0]);
        assert_eq!(cal.next_due(11), Some(10 + NEAR_SLOTS as u64));
        assert_eq!(due_at(&mut cal, 10 + NEAR_SLOTS as u64), [1]);
    }

    #[test]
    fn far_events_migrate_into_wheel() {
        let mut cal = EventCalendar::new(1, 0);
        cal.set(0, 1_000);
        // Cursor moves close enough that the wake enters the wheel.
        assert_eq!(cal.next_due(900), Some(1_000));
        assert_eq!(due_at(&mut cal, 1_000), [0]);
    }

    #[test]
    fn wake_exactly_on_wheel_boundary_waits_in_far_heap() {
        let mut cal = EventCalendar::new(3, 0);
        // With the cursor at 0 the wheel covers [0, NEAR_SLOTS): the last
        // in-window cycle is NEAR_SLOTS-1, and a wake at exactly
        // NEAR_SLOTS is the first far cycle. Both map to adjacent slots,
        // and the boundary one must not be visible a full lap early.
        let edge = NEAR_SLOTS as u64;
        cal.set(0, edge - 1);
        cal.set(1, edge);
        cal.set(2, edge); // two tokens sharing the boundary cycle
        assert_eq!(cal.next_due(0), Some(edge - 1));
        assert_eq!(due_at(&mut cal, edge - 1), [0]);
        // Advancing one cycle pulls the window forward; the boundary
        // wakes migrate out of the heap and fire exactly once.
        assert_eq!(cal.next_due(edge), Some(edge));
        assert_eq!(due_at(&mut cal, edge), [1, 2]);
        assert_eq!(cal.next_due(edge + 1), None);
    }

    #[test]
    fn boundary_reschedule_across_the_window_edge() {
        let mut cal = EventCalendar::new(1, 0);
        // Push a token back and forth across the window edge: the final
        // wake is authoritative, the superseded entries (one in the
        // wheel, one in the heap) must both be dropped lazily.
        let edge = NEAR_SLOTS as u64;
        cal.set(0, edge - 1); // wheel
        cal.set(0, edge + 5); // heap — supersedes the wheel entry
        cal.set(0, edge - 2); // wheel again — supersedes the heap entry
        assert_eq!(cal.next_due(0), Some(edge - 2));
        assert_eq!(due_at(&mut cal, edge - 2), [0]);
        assert!(due_at(&mut cal, edge - 1).is_empty());
        assert_eq!(cal.next_due(edge), None);
        assert!(due_at(&mut cal, edge + 5).is_empty());
    }

    #[test]
    fn far_promotion_into_wrapped_slot() {
        let mut cal = EventCalendar::new(2, 0);
        cal.set(0, 300); // far from cursor 0
        cal.set(1, 2_000); // stays far

        // At cursor 200 the window is [200, 456): cycle 300 is promoted
        // into slot 300 % 256 = 44, numerically *behind* the cursor's own
        // slot (200 % 256 = 200) — the wrapped half of the wheel. The
        // scan must still find it at the right cycle.
        assert_eq!(cal.next_due(200), Some(300));
        assert_eq!(due_at(&mut cal, 300), [0]);
        // And the wrapped entry must not resurface a lap later.
        assert_eq!(cal.next_due(301), Some(2_000));
        assert_eq!(due_at(&mut cal, 2_000), [1]);
        assert_eq!(cal.next_due(2_001), None);
    }

    #[test]
    fn dense_steady_state() {
        // Simulates the contended regime: one token rescheduled every few
        // cycles for a long stretch, interleaved with a periodic far wake.
        let mut cal = EventCalendar::new(2, 0);
        let mut now = 0;
        cal.set(1, 10_000);
        let mut fired = 0;
        while now < 12_000 {
            cal.set(0, now + 3);
            let next = cal.next_due(now + 1).unwrap();
            let mut due = Vec::new();
            cal.take_due(next, &mut due);
            for t in due {
                if t == 1 {
                    fired += 1;
                    assert_eq!(next, 10_000);
                }
            }
            now = next;
        }
        assert_eq!(fired, 1);
    }
}
