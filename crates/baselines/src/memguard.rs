//! Software MemGuard-style bandwidth regulation.
//!
//! MemGuard (Yun et al., RTAS 2013) regulates each actor's memory
//! bandwidth in software: a performance counter counts the actor's
//! memory traffic; when the counter crosses the per-tick budget it raises
//! an overflow interrupt whose handler throttles the actor until the next
//! OS tick replenishes the budget.
//!
//! Two properties make this *coarse*, and both are modelled here because
//! they are exactly what the paper's tightly-coupled IP removes:
//!
//! 1. **Tick granularity** — budgets replenish at the OS tick (order of
//!    1 ms), so bandwidth can only be shaped at millisecond scale and a
//!    bursty actor can consume its whole tick budget in the first few
//!    microseconds of the tick.
//! 2. **Enforcement latency** — between the counter overflow and the
//!    interrupt handler actually stopping the actor, traffic keeps
//!    flowing ([`MemGuardConfig::irq_latency_cycles`]); the overshoot is
//!    unbounded by the mechanism and grows with the actor's burst rate.

use fgqos_sim::axi::Request;
use fgqos_sim::gate::{GateDecision, PortGate};
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, StateHasher};

/// MemGuard parameters.
#[derive(Debug, Clone, Copy)]
pub struct MemGuardConfig {
    /// OS tick (replenishment period) in cycles. The classic value at a
    /// 1 GHz clock is 1 ms = 1 000 000 cycles.
    pub tick_cycles: u64,
    /// Byte budget per tick.
    pub budget_bytes: u64,
    /// Delay between the counter crossing the budget and the throttle
    /// taking effect (interrupt delivery + handler), in cycles.
    pub irq_latency_cycles: u64,
}

impl Default for MemGuardConfig {
    fn default() -> Self {
        MemGuardConfig {
            tick_cycles: 1_000_000,
            budget_bytes: 1_000_000,
            irq_latency_cycles: 2_000,
        }
    }
}

/// The MemGuard gate: per-tick byte accounting with delayed enforcement.
///
/// ```
/// use fgqos_baselines::memguard::{MemGuardConfig, MemGuardGate};
/// use fgqos_sim::axi::{Dir, MasterId, Request};
/// use fgqos_sim::gate::PortGate;
/// use fgqos_sim::time::Cycle;
///
/// let mut gate = MemGuardGate::new(MemGuardConfig {
///     tick_cycles: 1_000,
///     budget_bytes: 256,
///     irq_latency_cycles: 0,
/// });
/// let r = Request::new(MasterId::new(0), 0, 0, 16, Dir::Read, Cycle::ZERO);
/// assert!(gate.try_accept(&r, Cycle::ZERO).is_accept()); // crosses the budget
/// assert!(!gate.try_accept(&r, Cycle::new(1)).is_accept()); // throttled until the tick
/// ```
#[derive(Debug, Clone)]
pub struct MemGuardGate {
    cfg: MemGuardConfig,
    tick_start: Cycle,
    bytes_in_tick: u64,
    overflow_at: Option<Cycle>,
    total_bytes: u64,
    stall_cycles: u64,
    max_tick_bytes: u64,
}

impl MemGuardGate {
    /// Creates a gate from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the tick length is zero.
    pub fn new(cfg: MemGuardConfig) -> Self {
        assert!(cfg.tick_cycles > 0, "tick length must be non-zero");
        MemGuardGate {
            cfg,
            tick_start: Cycle::ZERO,
            bytes_in_tick: 0,
            overflow_at: None,
            total_bytes: 0,
            stall_cycles: 0,
            max_tick_bytes: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemGuardConfig {
        &self.cfg
    }

    /// Lifetime accepted bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Cycles spent throttled.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Largest byte count observed in any tick (overshoot telemetry:
    /// compare against `budget_bytes`).
    pub fn max_tick_bytes(&self) -> u64 {
        self.max_tick_bytes
    }

    /// Worst overshoot beyond the budget in any tick.
    pub fn max_overshoot(&self) -> u64 {
        self.max_tick_bytes.saturating_sub(self.cfg.budget_bytes)
    }

    fn throttled(&self, now: Cycle) -> bool {
        match self.overflow_at {
            Some(t) => now.saturating_since(t) >= self.cfg.irq_latency_cycles,
            None => false,
        }
    }
}

impl PortGate for MemGuardGate {
    fn on_cycle(&mut self, now: Cycle) {
        while now.saturating_since(self.tick_start) >= self.cfg.tick_cycles {
            self.max_tick_bytes = self.max_tick_bytes.max(self.bytes_in_tick);
            self.bytes_in_tick = 0;
            self.overflow_at = None;
            self.tick_start += self.cfg.tick_cycles;
        }
    }

    fn try_accept(&mut self, request: &Request, now: Cycle) -> GateDecision {
        if self.throttled(now) {
            self.stall_cycles += 1;
            return GateDecision::Deny;
        }
        self.bytes_in_tick += request.bytes();
        self.total_bytes += request.bytes();
        if self.overflow_at.is_none() && self.bytes_in_tick >= self.cfg.budget_bytes {
            // PMC overflow interrupt raised; enforcement lands after the
            // IRQ latency.
            self.overflow_at = Some(now);
        }
        GateDecision::Accept
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        // A throttled port unblocks at the next tick boundary (the
        // while-loop in `on_cycle` catches up however many ticks were
        // skipped). An in-flight overflow IRQ flips accept -> deny at
        // `overflow_at + irq_latency_cycles`; wake there too so the
        // throttle lands on the same cycle as under naive stepping.
        let mut wake = (self.tick_start + self.cfg.tick_cycles).max(now);
        if let Some(t) = self.overflow_at {
            if !self.throttled(now) {
                wake = wake.min((t + self.cfg.irq_latency_cycles).max(now));
            }
        }
        Some(wake)
    }

    fn on_denied_skip(&mut self, cycles: u64) {
        self.stall_cycles += cycles;
    }

    fn label(&self) -> &'static str {
        "memguard"
    }

    fn fork_gate(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn PortGate>> {
        Some(Box::new(self.clone()))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("memguard");
        h.write_u64(self.cfg.tick_cycles);
        h.write_u64(self.cfg.budget_bytes);
        h.write_u64(self.cfg.irq_latency_cycles);
        h.write_u64(self.tick_start.get());
        h.write_u64(self.bytes_in_tick);
        match self.overflow_at {
            None => h.write_bool(false),
            Some(t) => {
                h.write_bool(true);
                h.write_u64(t.get());
            }
        }
        h.write_u64(self.total_bytes);
        h.write_u64(self.stall_cycles);
        h.write_u64(self.max_tick_bytes);
    }

    fn snap_load(
        &mut self,
        r: &mut fgqos_sim::SnapReader<'_>,
    ) -> Result<(), fgqos_sim::SnapDecodeError> {
        use fgqos_sim::SnapDecodeError;
        r.section("memguard")?;
        // Configuration travels in the stream for verification only: the
        // skeleton this state loads into must have been built with the
        // same parameters.
        for (what, built) in [
            ("memguard tick_cycles", self.cfg.tick_cycles),
            ("memguard budget_bytes", self.cfg.budget_bytes),
            ("memguard irq_latency_cycles", self.cfg.irq_latency_cycles),
        ] {
            let at = r.position();
            let streamed = r.read_u64(what)?;
            if streamed != built {
                return Err(SnapDecodeError::BadValue {
                    what: format!("{what} {streamed} in stream, skeleton has {built}"),
                    at,
                });
            }
        }
        self.tick_start = Cycle::new(r.read_u64("memguard tick_start")?);
        self.bytes_in_tick = r.read_u64("memguard bytes_in_tick")?;
        self.overflow_at = if r.read_bool("memguard overflow flag")? {
            Some(Cycle::new(r.read_u64("memguard overflow_at")?))
        } else {
            None
        };
        self.total_bytes = r.read_u64("memguard total_bytes")?;
        self.stall_cycles = r.read_u64("memguard stall_cycles")?;
        self.max_tick_bytes = r.read_u64("memguard max_tick_bytes")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_sim::axi::{Dir, MasterId};

    fn req(serial: u64, bytes: u64) -> Request {
        let beats = (bytes / fgqos_sim::axi::BEAT_BYTES) as u16;
        Request::new(
            MasterId::new(0),
            serial,
            serial * 4096,
            beats,
            Dir::Read,
            Cycle::ZERO,
        )
    }

    fn gate(tick: u64, budget: u64, irq: u64) -> MemGuardGate {
        MemGuardGate::new(MemGuardConfig {
            tick_cycles: tick,
            budget_bytes: budget,
            irq_latency_cycles: irq,
        })
    }

    #[test]
    fn accepts_within_budget() {
        let mut g = gate(1_000, 512, 10);
        g.on_cycle(Cycle::ZERO);
        assert!(g.try_accept(&req(0, 256), Cycle::new(1)).is_accept());
        assert!(g.try_accept(&req(1, 128), Cycle::new(2)).is_accept());
        assert_eq!(g.total_bytes(), 384);
    }

    #[test]
    fn overshoot_continues_during_irq_latency() {
        // Budget 256 B, IRQ latency 100 cycles: the burst that crosses the
        // budget *and everything issued in the next 100 cycles* still
        // passes. This is the coarseness the paper attacks.
        let mut g = gate(1_000_000, 256, 100);
        g.on_cycle(Cycle::ZERO);
        assert!(g.try_accept(&req(0, 256), Cycle::new(0)).is_accept()); // crosses budget
        assert!(g.try_accept(&req(1, 256), Cycle::new(50)).is_accept()); // IRQ in flight
        assert!(g.try_accept(&req(2, 256), Cycle::new(99)).is_accept()); // still in flight
        assert_eq!(
            g.try_accept(&req(3, 256), Cycle::new(100)),
            GateDecision::Deny
        );
        assert_eq!(g.total_bytes(), 768);
    }

    #[test]
    fn budget_replenishes_at_tick() {
        let mut g = gate(1_000, 128, 0);
        g.on_cycle(Cycle::ZERO);
        assert!(g.try_accept(&req(0, 128), Cycle::new(0)).is_accept());
        // IRQ latency 0: throttle is immediate.
        assert_eq!(
            g.try_accept(&req(1, 128), Cycle::new(1)),
            GateDecision::Deny
        );
        assert!(g.stall_cycles() > 0);
        g.on_cycle(Cycle::new(1_000));
        assert!(g.try_accept(&req(1, 128), Cycle::new(1_000)).is_accept());
    }

    #[test]
    fn max_overshoot_telemetry() {
        let mut g = gate(1_000, 100, 1_000_000);
        g.on_cycle(Cycle::ZERO);
        // IRQ never lands within the tick: everything passes.
        for s in 0..4 {
            assert!(g.try_accept(&req(s, 256), Cycle::new(s)).is_accept());
        }
        g.on_cycle(Cycle::new(1_000));
        assert_eq!(g.max_tick_bytes(), 1_024);
        assert_eq!(g.max_overshoot(), 924);
    }

    #[test]
    fn multiple_ticks_skipped_when_idle() {
        let mut g = gate(100, 64, 0);
        g.on_cycle(Cycle::ZERO);
        assert!(g.try_accept(&req(0, 64), Cycle::new(0)).is_accept());
        // Skip 5 ticks of idleness; state must be fresh.
        g.on_cycle(Cycle::new(550));
        assert!(g.try_accept(&req(1, 64), Cycle::new(550)).is_accept());
    }

    #[test]
    #[should_panic(expected = "tick length")]
    fn zero_tick_rejected() {
        let _ = gate(0, 1, 0);
    }
}
