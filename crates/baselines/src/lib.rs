//! # fgqos-baselines — comparison arbitration schemes
//!
//! The regulation baselines the paper measures the tightly-coupled IP
//! against, implemented on the same [`PortGate`](fgqos_sim::PortGate)
//! seam so all schemes are directly comparable inside one SoC model:
//!
//! * [`memguard`] — software per-actor bandwidth regulation: PMC-style
//!   byte accounting, OS-tick-granular replenishment, interrupt-latency
//!   enforcement delay. The state of the art the paper improves on.
//! * [`qos400`] — ARM QoS-400-style outstanding-transaction (and
//!   transaction-rate) regulation: the COTS interconnect alternative,
//!   blind to burst sizes.
//! * [`tdma`] — PREM-style mutually exclusive memory phases on a static
//!   TDMA schedule: hard guarantees, heavy bandwidth waste.
//! * The unregulated baseline is [`fgqos_sim::OpenGate`].

pub mod memguard;
pub mod qos400;
pub mod tdma;

pub use memguard::{MemGuardConfig, MemGuardGate};
pub use qos400::{OtRegulatorConfig, OtRegulatorGate};
pub use tdma::{TdmaGate, TdmaSchedule};

/// Commonly used items.
pub mod prelude {
    pub use crate::memguard::{MemGuardConfig, MemGuardGate};
    pub use crate::qos400::{OtRegulatorConfig, OtRegulatorGate};
    pub use crate::tdma::{TdmaGate, TdmaSchedule};
}
