//! PREM-style TDMA memory arbitration.
//!
//! The Predictable Execution Model family gives timing guarantees by
//! making memory phases *mutually exclusive*: a static TDMA schedule
//! assigns each actor exclusive memory slots; outside its slots an actor
//! may not issue memory traffic at all. The guarantee is airtight, but
//! every cycle of a slot its owner does not use is wasted — the
//! under-utilization the CMRI line of work (and this paper's reclaim
//! policy) recovers.
//!
//! [`TdmaGate`] gates admission only: a transaction must *start* inside
//! one of the port's slots. To keep a transaction from spilling far into
//! the next slot, the gate also refuses admissions too close to the slot
//! boundary for the burst to drain (configurable guard band).

use fgqos_sim::axi::Request;
use fgqos_sim::gate::{GateDecision, PortGate};
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, StateHasher};

/// A static TDMA schedule shared by all ports of a system.
#[derive(Debug, Clone)]
pub struct TdmaSchedule {
    slot_cycles: u64,
    num_slots: usize,
}

impl TdmaSchedule {
    /// Creates a schedule of `num_slots` rotating slots of `slot_cycles`
    /// cycles each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(slot_cycles: u64, num_slots: usize) -> Self {
        assert!(slot_cycles > 0, "slot length must be non-zero");
        assert!(num_slots > 0, "schedule needs at least one slot");
        TdmaSchedule {
            slot_cycles,
            num_slots,
        }
    }

    /// Slot length in cycles.
    pub fn slot_cycles(&self) -> u64 {
        self.slot_cycles
    }

    /// Number of slots in one rotation.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// The slot index active at `now`.
    pub fn slot_at(&self, now: Cycle) -> usize {
        ((now.get() / self.slot_cycles) % self.num_slots as u64) as usize
    }

    /// Cycles remaining in the slot active at `now`.
    pub fn remaining_in_slot(&self, now: Cycle) -> u64 {
        self.slot_cycles - (now.get() % self.slot_cycles)
    }
}

/// One port's view of a [`TdmaSchedule`].
///
/// ```
/// use fgqos_baselines::tdma::{TdmaGate, TdmaSchedule};
/// use fgqos_sim::axi::{Dir, MasterId, Request};
/// use fgqos_sim::gate::PortGate;
/// use fgqos_sim::time::Cycle;
///
/// let mut gate = TdmaGate::new(TdmaSchedule::new(100, 2), vec![1], 0);
/// let r = Request::new(MasterId::new(0), 0, 0, 4, Dir::Read, Cycle::ZERO);
/// assert!(!gate.try_accept(&r, Cycle::new(50)).is_accept()); // slot 0: not ours
/// assert!(gate.try_accept(&r, Cycle::new(150)).is_accept()); // slot 1: ours
/// ```
#[derive(Debug, Clone)]
pub struct TdmaGate {
    schedule: TdmaSchedule,
    my_slots: Vec<usize>,
    guard_cycles: u64,
    stall_cycles: u64,
    accepted: u64,
}

impl TdmaGate {
    /// Creates a gate allowing admission during `my_slots` of `schedule`,
    /// refusing admissions within `guard_cycles` of the slot end.
    ///
    /// # Panics
    ///
    /// Panics if `my_slots` is empty or references a slot outside the
    /// schedule.
    pub fn new(schedule: TdmaSchedule, my_slots: Vec<usize>, guard_cycles: u64) -> Self {
        assert!(!my_slots.is_empty(), "port needs at least one slot");
        assert!(
            my_slots.iter().all(|&s| s < schedule.num_slots()),
            "slot index outside schedule"
        );
        TdmaGate {
            schedule,
            my_slots,
            guard_cycles,
            stall_cycles: 0,
            accepted: 0,
        }
    }

    /// Cycles spent denied.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Transactions admitted.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Whether this port owns the slot active at `now`.
    pub fn in_slot(&self, now: Cycle) -> bool {
        self.my_slots.contains(&self.schedule.slot_at(now))
    }
}

impl PortGate for TdmaGate {
    fn try_accept(&mut self, _request: &Request, now: Cycle) -> GateDecision {
        if self.in_slot(now) && self.schedule.remaining_in_slot(now) > self.guard_cycles {
            self.accepted += 1;
            GateDecision::Accept
        } else {
            self.stall_cycles += 1;
            GateDecision::Deny
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        // The gate is a pure function of `now`: its decision can only
        // flip at the guard-band edge of the current slot (accept ->
        // deny) or at a slot boundary (deny -> accept, possibly of a
        // later slot — re-evaluated boundary by boundary).
        let remaining = self.schedule.remaining_in_slot(now);
        if self.in_slot(now) && remaining > self.guard_cycles {
            Some(now + (remaining - self.guard_cycles))
        } else {
            Some(now + remaining)
        }
    }

    fn on_denied_skip(&mut self, cycles: u64) {
        self.stall_cycles += cycles;
    }

    fn label(&self) -> &'static str {
        "tdma"
    }

    fn fork_gate(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn PortGate>> {
        Some(Box::new(self.clone()))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("tdma");
        h.write_u64(self.schedule.slot_cycles);
        h.write_usize(self.schedule.num_slots);
        h.write_usize(self.my_slots.len());
        for &s in &self.my_slots {
            h.write_usize(s);
        }
        h.write_u64(self.guard_cycles);
        h.write_u64(self.stall_cycles);
        h.write_u64(self.accepted);
    }

    fn snap_load(
        &mut self,
        r: &mut fgqos_sim::SnapReader<'_>,
    ) -> Result<(), fgqos_sim::SnapDecodeError> {
        use fgqos_sim::SnapDecodeError;
        r.section("tdma")?;
        // The schedule and slot assignment are structural configuration:
        // verified against the skeleton, never overwritten.
        let at = r.position();
        let slot_cycles = r.read_u64("tdma slot_cycles")?;
        if slot_cycles != self.schedule.slot_cycles {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "tdma slot length {slot_cycles} in stream, skeleton has {}",
                    self.schedule.slot_cycles
                ),
                at,
            });
        }
        let at = r.position();
        let num_slots = r.read_usize("tdma num_slots")?;
        if num_slots != self.schedule.num_slots {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "tdma slot count {num_slots} in stream, skeleton has {}",
                    self.schedule.num_slots
                ),
                at,
            });
        }
        let at = r.position();
        let mine = r.read_usize("tdma my_slots length")?;
        if mine != self.my_slots.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "tdma owns {mine} slot(s) in stream, skeleton owns {}",
                    self.my_slots.len()
                ),
                at,
            });
        }
        for (i, &built) in self.my_slots.iter().enumerate() {
            let at = r.position();
            let slot = r.read_usize("tdma slot index")?;
            if slot != built {
                return Err(SnapDecodeError::BadValue {
                    what: format!("tdma slot[{i}] is {slot} in stream, skeleton has {built}"),
                    at,
                });
            }
        }
        let at = r.position();
        let guard = r.read_u64("tdma guard_cycles")?;
        if guard != self.guard_cycles {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "tdma guard band {guard} in stream, skeleton has {}",
                    self.guard_cycles
                ),
                at,
            });
        }
        self.stall_cycles = r.read_u64("tdma stall_cycles")?;
        self.accepted = r.read_u64("tdma accepted")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_sim::axi::{Dir, MasterId};

    fn req() -> Request {
        Request::new(MasterId::new(0), 0, 0, 4, Dir::Read, Cycle::ZERO)
    }

    #[test]
    fn schedule_rotation() {
        let s = TdmaSchedule::new(100, 4);
        assert_eq!(s.slot_at(Cycle::new(0)), 0);
        assert_eq!(s.slot_at(Cycle::new(99)), 0);
        assert_eq!(s.slot_at(Cycle::new(100)), 1);
        assert_eq!(s.slot_at(Cycle::new(399)), 3);
        assert_eq!(s.slot_at(Cycle::new(400)), 0);
        assert_eq!(s.remaining_in_slot(Cycle::new(30)), 70);
    }

    #[test]
    fn gate_admits_only_in_own_slot() {
        let s = TdmaSchedule::new(100, 2);
        let mut g = TdmaGate::new(s, vec![1], 0);
        assert_eq!(g.try_accept(&req(), Cycle::new(50)), GateDecision::Deny);
        assert!(g.try_accept(&req(), Cycle::new(150)).is_accept());
        assert_eq!(g.stall_cycles(), 1);
        assert_eq!(g.accepted(), 1);
    }

    #[test]
    fn guard_band_blocks_slot_tail() {
        let s = TdmaSchedule::new(100, 2);
        let mut g = TdmaGate::new(s, vec![0], 20);
        assert!(g.try_accept(&req(), Cycle::new(10)).is_accept());
        // 15 cycles left < 20 guard: denied.
        assert_eq!(g.try_accept(&req(), Cycle::new(85)), GateDecision::Deny);
    }

    #[test]
    fn multiple_slots_per_port() {
        let s = TdmaSchedule::new(10, 4);
        let mut g = TdmaGate::new(s, vec![0, 2], 0);
        assert!(g.try_accept(&req(), Cycle::new(5)).is_accept());
        assert_eq!(g.try_accept(&req(), Cycle::new(15)), GateDecision::Deny);
        assert!(g.try_accept(&req(), Cycle::new(25)).is_accept());
    }

    #[test]
    #[should_panic(expected = "slot index outside")]
    fn invalid_slot_rejected() {
        let s = TdmaSchedule::new(10, 2);
        let _ = TdmaGate::new(s, vec![2], 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_slots_rejected() {
        let s = TdmaSchedule::new(10, 2);
        let _ = TdmaGate::new(s, vec![], 0);
    }
}
