//! ARM QoS-400-style outstanding-transaction regulation.
//!
//! Commercial interconnects (ARM CoreLink QoS-400, and the AXI QoS
//! controls baked into Zynq-class PS interconnects) regulate a master by
//! capping its *outstanding transactions* and optionally its *transaction
//! rate*, not its bytes. This is the COTS alternative the paper's IP is
//! measured against, and its weakness is structural: a transaction is
//! not a byte. With variable burst sizes, an OT/rate cap either
//! over-throttles small-burst masters or under-throttles large-burst
//! ones — per-byte window accounting is what fixes this.
//!
//! [`OtRegulatorGate`] caps in-flight transactions at the port and
//! optionally enforces a transactions-per-window rate.

use fgqos_sim::axi::{Request, Response};
use fgqos_sim::gate::{GateDecision, PortGate};
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, StateHasher};

/// Configuration of an [`OtRegulatorGate`].
#[derive(Debug, Clone, Copy)]
pub struct OtRegulatorConfig {
    /// Maximum in-flight transactions the gate admits (the QoS-400
    /// "outstanding transaction" cap).
    pub max_outstanding: usize,
    /// Optional rate cap: at most `txns_per_period` admissions per
    /// `period_cycles` window (0 disables the rate stage).
    pub txns_per_period: u32,
    /// Rate window in cycles (ignored when the rate stage is disabled).
    pub period_cycles: u64,
}

impl Default for OtRegulatorConfig {
    fn default() -> Self {
        OtRegulatorConfig {
            max_outstanding: 4,
            txns_per_period: 0,
            period_cycles: 1_000,
        }
    }
}

/// Outstanding-transaction (plus optional transaction-rate) regulator.
///
/// ```
/// use fgqos_baselines::qos400::{OtRegulatorConfig, OtRegulatorGate};
/// use fgqos_sim::axi::{Dir, MasterId, Request};
/// use fgqos_sim::gate::PortGate;
/// use fgqos_sim::time::Cycle;
///
/// let mut gate = OtRegulatorGate::new(OtRegulatorConfig {
///     max_outstanding: 1,
///     ..OtRegulatorConfig::default()
/// });
/// let r = Request::new(MasterId::new(0), 0, 0, 4, Dir::Read, Cycle::ZERO);
/// assert!(gate.try_accept(&r, Cycle::ZERO).is_accept());
/// // One transaction in flight: the cap denies the next.
/// assert!(!gate.try_accept(&r, Cycle::new(1)).is_accept());
/// ```
#[derive(Debug, Clone)]
pub struct OtRegulatorGate {
    cfg: OtRegulatorConfig,
    in_flight: usize,
    window_start: Cycle,
    window_txns: u32,
    stall_cycles: u64,
    accepted: u64,
}

impl OtRegulatorGate {
    /// Creates a gate from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the outstanding cap is zero, or the rate stage is
    /// enabled with a zero-length window.
    pub fn new(cfg: OtRegulatorConfig) -> Self {
        assert!(cfg.max_outstanding > 0, "outstanding cap must be non-zero");
        assert!(
            cfg.txns_per_period == 0 || cfg.period_cycles > 0,
            "rate stage needs a non-zero window"
        );
        OtRegulatorGate {
            cfg,
            in_flight: 0,
            window_start: Cycle::ZERO,
            window_txns: 0,
            stall_cycles: 0,
            accepted: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &OtRegulatorConfig {
        &self.cfg
    }

    /// Transactions currently in flight through this gate.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Cycles spent denying the handshake.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Transactions admitted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
}

impl PortGate for OtRegulatorGate {
    fn on_cycle(&mut self, now: Cycle) {
        if self.cfg.txns_per_period == 0 {
            return;
        }
        while now.saturating_since(self.window_start) >= self.cfg.period_cycles {
            self.window_start += self.cfg.period_cycles;
            self.window_txns = 0;
        }
    }

    fn try_accept(&mut self, _request: &Request, _now: Cycle) -> GateDecision {
        if self.in_flight >= self.cfg.max_outstanding {
            self.stall_cycles += 1;
            return GateDecision::Deny;
        }
        if self.cfg.txns_per_period > 0 && self.window_txns >= self.cfg.txns_per_period {
            self.stall_cycles += 1;
            return GateDecision::Deny;
        }
        self.in_flight += 1;
        self.window_txns += 1;
        self.accepted += 1;
        GateDecision::Accept
    }

    fn on_complete(&mut self, _response: &Response, _now: Cycle) {
        debug_assert!(
            self.in_flight > 0,
            "completion without in-flight transaction"
        );
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        // In-flight-cap denials flip on completions, which execute a
        // full SoC step and mark the master's gate state dirty — no
        // time-based wake is needed for them. The rate stage flips at
        // its window boundary.
        if self.cfg.txns_per_period == 0 {
            None
        } else {
            Some((self.window_start + self.cfg.period_cycles).max(now))
        }
    }

    fn on_denied_skip(&mut self, cycles: u64) {
        self.stall_cycles += cycles;
    }

    fn label(&self) -> &'static str {
        "qos400-ot"
    }

    fn fork_gate(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn PortGate>> {
        Some(Box::new(self.clone()))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("qos400-ot");
        h.write_usize(self.cfg.max_outstanding);
        h.write_u32(self.cfg.txns_per_period);
        h.write_u64(self.cfg.period_cycles);
        h.write_usize(self.in_flight);
        h.write_u64(self.window_start.get());
        h.write_u32(self.window_txns);
        h.write_u64(self.stall_cycles);
        h.write_u64(self.accepted);
    }

    fn snap_load(
        &mut self,
        r: &mut fgqos_sim::SnapReader<'_>,
    ) -> Result<(), fgqos_sim::SnapDecodeError> {
        use fgqos_sim::SnapDecodeError;
        r.section("qos400-ot")?;
        let at = r.position();
        let cap = r.read_usize("qos400 max_outstanding")?;
        if cap != self.cfg.max_outstanding {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "qos400 outstanding cap {cap} in stream, skeleton has {}",
                    self.cfg.max_outstanding
                ),
                at,
            });
        }
        let at = r.position();
        let rate = r.read_u32("qos400 txns_per_period")?;
        if rate != self.cfg.txns_per_period {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "qos400 rate {rate} txns/period in stream, skeleton has {}",
                    self.cfg.txns_per_period
                ),
                at,
            });
        }
        let at = r.position();
        let period = r.read_u64("qos400 period_cycles")?;
        if period != self.cfg.period_cycles {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "qos400 period {period} in stream, skeleton has {}",
                    self.cfg.period_cycles
                ),
                at,
            });
        }
        self.in_flight = r.read_usize("qos400 in_flight")?;
        self.window_start = Cycle::new(r.read_u64("qos400 window_start")?);
        self.window_txns = r.read_u32("qos400 window_txns")?;
        self.stall_cycles = r.read_u64("qos400 stall_cycles")?;
        self.accepted = r.read_u64("qos400 accepted")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_sim::axi::{Dir, MasterId};

    fn req(serial: u64, beats: u16) -> Request {
        Request::new(
            MasterId::new(0),
            serial,
            serial * 4096,
            beats,
            Dir::Read,
            Cycle::ZERO,
        )
    }

    fn resp(r: Request) -> Response {
        Response {
            request: r,
            completed_at: Cycle::new(100),
        }
    }

    #[test]
    fn caps_outstanding_transactions() {
        let mut g = OtRegulatorGate::new(OtRegulatorConfig {
            max_outstanding: 2,
            ..OtRegulatorConfig::default()
        });
        let a = req(0, 4);
        let b = req(1, 4);
        assert!(g.try_accept(&a, Cycle::ZERO).is_accept());
        assert!(g.try_accept(&b, Cycle::ZERO).is_accept());
        assert_eq!(g.try_accept(&req(2, 4), Cycle::ZERO), GateDecision::Deny);
        assert_eq!(g.in_flight(), 2);
        g.on_complete(&resp(a), Cycle::new(100));
        assert!(g.try_accept(&req(2, 4), Cycle::new(100)).is_accept());
        assert_eq!(g.stall_cycles(), 1);
    }

    #[test]
    fn rate_stage_limits_txns_per_window() {
        let mut g = OtRegulatorGate::new(OtRegulatorConfig {
            max_outstanding: 100,
            txns_per_period: 2,
            period_cycles: 1_000,
        });
        g.on_cycle(Cycle::ZERO);
        let a = req(0, 1);
        let b = req(1, 1);
        assert!(g.try_accept(&a, Cycle::ZERO).is_accept());
        g.on_complete(&resp(a), Cycle::new(10));
        assert!(g.try_accept(&b, Cycle::new(10)).is_accept());
        g.on_complete(&resp(b), Cycle::new(20));
        assert_eq!(g.try_accept(&req(2, 1), Cycle::new(20)), GateDecision::Deny);
        // Replenishes at the window boundary.
        g.on_cycle(Cycle::new(1_000));
        assert!(g.try_accept(&req(2, 1), Cycle::new(1_000)).is_accept());
    }

    #[test]
    fn transaction_rate_ignores_burst_size() {
        // The structural weakness: 2 txns/window admits 32 bytes of
        // single-beat traffic or 8192 bytes of max-burst traffic — a
        // 256x spread the byte-based regulator does not have.
        let mut small = OtRegulatorGate::new(OtRegulatorConfig {
            max_outstanding: 100,
            txns_per_period: 2,
            period_cycles: 1_000,
        });
        let mut big = OtRegulatorGate::new(OtRegulatorConfig {
            max_outstanding: 100,
            txns_per_period: 2,
            period_cycles: 1_000,
        });
        let mut small_bytes = 0;
        let mut big_bytes = 0;
        for s in 0..3u64 {
            let rs = req(s, 1);
            if small.try_accept(&rs, Cycle::ZERO).is_accept() {
                small_bytes += rs.bytes();
                small.on_complete(&resp(rs), Cycle::ZERO);
            }
            let rb = req(s, 256);
            if big.try_accept(&rb, Cycle::ZERO).is_accept() {
                big_bytes += rb.bytes();
                big.on_complete(&resp(rb), Cycle::ZERO);
            }
        }
        assert_eq!(small_bytes, 32);
        assert_eq!(big_bytes, 8_192);
    }

    #[test]
    fn disabled_rate_stage_only_caps_outstanding() {
        let mut g = OtRegulatorGate::new(OtRegulatorConfig {
            max_outstanding: 1,
            txns_per_period: 0,
            period_cycles: 0, // allowed when the rate stage is off
        });
        let a = req(0, 1);
        assert!(g.try_accept(&a, Cycle::ZERO).is_accept());
        g.on_complete(&resp(a), Cycle::new(5));
        // Arbitrarily many txns per window as long as they serialize.
        for s in 1..50u64 {
            let r = req(s, 1);
            assert!(g.try_accept(&r, Cycle::new(s)).is_accept());
            g.on_complete(&resp(r), Cycle::new(s));
        }
        assert_eq!(g.accepted(), 50);
    }

    #[test]
    #[should_panic(expected = "outstanding cap")]
    fn zero_cap_rejected() {
        let _ = OtRegulatorGate::new(OtRegulatorConfig {
            max_outstanding: 0,
            ..OtRegulatorConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "non-zero window")]
    fn rate_stage_needs_window() {
        let _ = OtRegulatorGate::new(OtRegulatorConfig {
            max_outstanding: 1,
            txns_per_period: 5,
            period_cycles: 0,
        });
    }
}
