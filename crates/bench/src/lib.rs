//! # fgqos-bench — experiment harnesses and micro-benchmarks
//!
//! One binary per paper table/figure (see `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured records):
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_interference` | EXP-F1: slowdown vs. # interfering masters |
//! | `exp_accuracy` | EXP-F2: configured vs. measured bandwidth |
//! | `exp_granularity` | EXP-F3: overshoot & p99 latency vs. period |
//! | `exp_utilization` | EXP-F4: utilization under a 10 % QoS bound |
//! | `exp_adaptive` | EXP-F5: feedback re-budgeting timeline |
//! | `exp_enforcement` | EXP-F6: enforcement-latency distribution |
//! | `exp_resources` | EXP-T1: FPGA resource usage of the IP |
//! | `exp_benchmarks` | EXP-T2: per-kernel slowdown table |
//! | `exp_ablations` | EXP-A: design-choice ablations |
//! | `exp_bounds` | EXP-B: analytic bound vs. observed worst case |
//! | `exp_placement` | EXP-P: per-port vs. shared regulator placement |
//!
//! This library crate hosts the shared harness utilities ([`scenario`],
//! [`sweep`], [`table`]) used by those binaries and by the Criterion
//! benches. Every binary evaluates its grid through
//! [`sweep::run_parallel`], so wall-clock scales with the machine while
//! row order stays deterministic.

pub mod report;
pub mod rng;
pub mod scenario;
pub mod scenarios;
pub mod sweep;
pub mod table;
