//! Shared experiment scenarios.
//!
//! Every experiment in the paper's evaluation is a variation of one
//! template: a latency-sensitive *critical* actor co-runs with N
//! bandwidth-hungry *interferers*, under one of four arbitration schemes.
//! This module builds those systems so the `exp_*` binaries stay small
//! and consistent with each other.

use fgqos_baselines::memguard::{MemGuardConfig, MemGuardGate};
use fgqos_baselines::tdma::{TdmaGate, TdmaSchedule};
use fgqos_core::driver::RegulatorDriver;
use fgqos_core::policy::{ReclaimConfig, ReclaimPolicy};
use fgqos_core::regulator::{RegulatorConfig, TcRegulator};
use fgqos_sim::axi::{Dir, MasterId};
use fgqos_sim::dram::DramConfig;
use fgqos_sim::master::{MasterKind, TrafficSource};
use fgqos_sim::system::{Soc, SocBuilder, SocConfig};
use fgqos_sim::time::Cycle;
use fgqos_workloads::spec::{BurstShape, SpecSource, TrafficSpec};

/// The arbitration scheme applied to the interferers.
#[derive(Debug, Clone, Copy)]
pub enum Scheme {
    /// No regulation (the motivation case).
    Unregulated,
    /// The paper's tightly-coupled regulator, one instance per
    /// interferer, each with this window period and byte budget.
    Tc {
        /// Replenishment window in cycles.
        period: u32,
        /// Byte budget per window per interferer.
        budget: u32,
    },
    /// Software MemGuard on every interferer.
    MemGuard {
        /// OS tick in cycles.
        tick: u64,
        /// Byte budget per tick per interferer.
        budget: u64,
        /// Interrupt enforcement latency in cycles.
        irq: u64,
    },
    /// PREM-style TDMA: one slot per master. Slot 0 belongs to the
    /// critical actor (which is itself left ungated — it owns its slot
    /// implicitly because all interferers are silenced during it).
    Tdma {
        /// Slot length in cycles.
        slot: u64,
    },
    /// PREM-style mutually exclusive phases aligned to the critical
    /// actor's burst shape: all interferers are silenced during the
    /// critical actor's active phase (slot 0) and share its idle phase
    /// (slot 1). `guard` keeps interferer bursts from spilling into the
    /// next critical phase.
    PremPhase {
        /// Phase (slot) length in cycles; must match the critical burst.
        phase: u64,
        /// Guard band before the phase boundary, in cycles.
        guard: u64,
    },
}

impl Scheme {
    /// Short reporting name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Unregulated => "unregulated",
            Scheme::Tc { .. } => "tc-regulator",
            Scheme::MemGuard { .. } => "memguard",
            Scheme::Tdma { .. } => "prem-tdma",
            Scheme::PremPhase { .. } => "prem-phase",
        }
    }
}

/// Parameters of the co-run template.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of interfering accelerator ports.
    pub interferers: usize,
    /// Interferer transaction size in bytes.
    pub interferer_txn_bytes: u64,
    /// Interferer traffic direction.
    pub interferer_dir: Dir,
    /// Critical actor's transaction count (workload size).
    pub critical_txns: u64,
    /// Critical actor's transaction size in bytes.
    pub critical_txn_bytes: u64,
    /// Critical actor's closed-loop think time in cycles.
    pub critical_think: u64,
    /// Optional on/off phasing of the critical actor (bursty workloads
    /// with compute-only phases the reclaim policy can exploit).
    pub critical_burst: Option<BurstShape>,
    /// Outstanding-transaction limit of the critical actor.
    pub critical_outstanding: usize,
    /// Cycle at which the critical actor launches (0 = immediately).
    /// Warm-start sweeps delay the launch past a shared interferer
    /// warm-up phase so every measured sample lands after the boundary.
    pub critical_start: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            interferers: 6,
            interferer_txn_bytes: 1024,
            interferer_dir: Dir::Write,
            critical_txns: 2_000,
            critical_txn_bytes: 256,
            critical_think: 100,
            critical_burst: None,
            critical_outstanding: 1,
            critical_start: 0,
            seed: 1,
        }
    }
}

/// A built co-run system plus the driver handles the software side holds.
pub struct Built {
    /// The SoC, ready to run.
    pub soc: Soc,
    /// Port id of the critical actor.
    pub critical: MasterId,
    /// Monitor-only driver attached to the critical port.
    pub critical_driver: RegulatorDriver,
    /// Drivers of the interferer regulators (empty unless `Scheme::Tc`).
    pub interferer_drivers: Vec<RegulatorDriver>,
}

impl Scenario {
    /// The critical actor's traffic spec.
    pub fn critical_spec(&self) -> TrafficSpec {
        let spec = TrafficSpec::latency_sensitive(
            0,
            4 << 20,
            self.critical_txn_bytes,
            self.critical_think,
        )
        .with_total(self.critical_txns);
        match self.critical_burst {
            Some(b) => spec.with_burst(b),
            None => spec,
        }
    }

    /// The i-th interferer's traffic spec.
    pub fn interferer_spec(&self, i: usize) -> TrafficSpec {
        TrafficSpec::stream(
            (1 + i as u64) << 28,
            16 << 20,
            self.interferer_txn_bytes,
            self.interferer_dir,
        )
    }

    /// SoC configuration shared by all schemes (refresh enabled).
    pub fn soc_config(&self) -> SocConfig {
        SocConfig {
            dram: DramConfig::default(),
            ..SocConfig::default()
        }
    }

    /// Builds the co-run system under `scheme` with the default critical
    /// traffic (see [`Scenario::critical_spec`]).
    pub fn build(&self, scheme: Scheme) -> Built {
        let source = SpecSource::new(self.critical_spec(), self.seed)
            .with_start(Cycle::new(self.critical_start));
        self.build_with_critical(source, scheme)
    }

    /// Builds the co-run system under `scheme` with a custom critical
    /// traffic source (e.g. a benchmark kernel model).
    pub fn build_with_critical(
        &self,
        critical_source: impl TrafficSource + 'static,
        scheme: Scheme,
    ) -> Built {
        let monitor_period = 1_000;
        let (crit_monitor, critical_driver) = TcRegulator::monitor_only(monitor_period);
        let mut builder = SocBuilder::new(self.soc_config()).master_full(
            "critical",
            critical_source,
            MasterKind::Cpu,
            crit_monitor,
            self.critical_outstanding,
        );
        let mut interferer_drivers = Vec::new();
        for i in 0..self.interferers {
            let name = format!("dma{i}");
            let source = SpecSource::new(self.interferer_spec(i), self.seed + 100 + i as u64);
            builder = match scheme {
                Scheme::Unregulated => builder.master(name, source, MasterKind::Accelerator),
                Scheme::Tc { period, budget } => {
                    let (reg, driver) = TcRegulator::create(RegulatorConfig {
                        period_cycles: period,
                        budget_bytes: budget,
                        enabled: true,
                        ..RegulatorConfig::default()
                    });
                    interferer_drivers.push(driver);
                    builder.gated_master(name, source, MasterKind::Accelerator, reg)
                }
                Scheme::MemGuard { tick, budget, irq } => {
                    let gate = MemGuardGate::new(MemGuardConfig {
                        tick_cycles: tick,
                        budget_bytes: budget,
                        irq_latency_cycles: irq,
                    });
                    builder.gated_master(name, source, MasterKind::Accelerator, gate)
                }
                Scheme::Tdma { slot } => {
                    let schedule = TdmaSchedule::new(slot, self.interferers + 1);
                    let gate = TdmaGate::new(schedule, vec![i + 1], 0);
                    builder.gated_master(name, source, MasterKind::Accelerator, gate)
                }
                Scheme::PremPhase { phase, guard } => {
                    let schedule = TdmaSchedule::new(phase, 2);
                    let gate = TdmaGate::new(schedule, vec![1], guard);
                    builder.gated_master(name, source, MasterKind::Accelerator, gate)
                }
            };
        }
        let soc = builder.build();
        let critical = soc.master_id("critical").expect("critical registered");
        Built {
            soc,
            critical,
            critical_driver,
            interferer_drivers,
        }
    }

    /// Builds the tightly-coupled scheme plus a CMRI-style
    /// [`ReclaimPolicy`] over the interferers' regulators, configured by
    /// `reclaim` (its `be_base` is overridden to match `base_budget`).
    pub fn build_with_reclaim(
        &self,
        period: u32,
        base_budget: u32,
        reclaim: ReclaimConfig,
    ) -> Built {
        let (crit_monitor, critical_driver) = TcRegulator::monitor_only(1_000);
        let mut regulators = Vec::new();
        let mut interferer_drivers = Vec::new();
        for _ in 0..self.interferers {
            let (reg, driver) = TcRegulator::create(RegulatorConfig {
                period_cycles: period,
                budget_bytes: base_budget,
                enabled: true,
                ..RegulatorConfig::default()
            });
            regulators.push(reg);
            interferer_drivers.push(driver);
        }
        let windows = (reclaim.control_period / period as u64).max(1);
        let policy = ReclaimPolicy::new(
            critical_driver.clone(),
            interferer_drivers.clone(),
            ReclaimConfig {
                be_base: base_budget as u64 * windows,
                ..reclaim
            },
        );
        let mut builder = SocBuilder::new(self.soc_config())
            .master_full(
                "critical",
                SpecSource::new(self.critical_spec(), self.seed),
                MasterKind::Cpu,
                crit_monitor,
                1,
            )
            .controller(policy);
        for (i, reg) in regulators.into_iter().enumerate() {
            let source = SpecSource::new(self.interferer_spec(i), self.seed + 100 + i as u64);
            builder = builder.gated_master(format!("dma{i}"), source, MasterKind::Accelerator, reg);
        }
        let soc = builder.build();
        let critical = soc.master_id("critical").expect("critical registered");
        Built {
            soc,
            critical,
            critical_driver,
            interferer_drivers,
        }
    }

    /// Runs the critical actor alone and returns its completion time in
    /// cycles (the isolation baseline all slowdowns are computed from).
    pub fn isolation_cycles(&self) -> u64 {
        self.isolation_cycles_with(SpecSource::new(self.critical_spec(), self.seed))
    }

    /// Isolation baseline for a custom critical traffic source.
    pub fn isolation_cycles_with(&self, critical_source: impl TrafficSource + 'static) -> u64 {
        let (crit_monitor, _driver) = TcRegulator::monitor_only(1_000);
        let mut soc = SocBuilder::new(self.soc_config())
            .master_full(
                "critical",
                critical_source,
                MasterKind::Cpu,
                crit_monitor,
                self.critical_outstanding,
            )
            .build();
        soc.run_until_done(MasterId::new(0), u64::MAX / 2)
            .expect("isolation run completes")
            .get()
    }

    /// Builds under `scheme`, runs until the critical actor completes and
    /// returns `(completion_cycles, built)`.
    ///
    /// # Panics
    ///
    /// Panics if the critical actor does not finish within `max_cycles`.
    pub fn run(&self, scheme: Scheme, max_cycles: u64) -> (u64, Built) {
        let mut built = self.build(scheme);
        let done = built
            .soc
            .run_until_done(built.critical, max_cycles)
            .unwrap_or_else(|| panic!("critical did not finish under {}", scheme.name()));
        (done.get(), built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        Scenario {
            interferers: 2,
            critical_txns: 200,
            ..Scenario::default()
        }
    }

    #[test]
    fn isolation_baseline_is_stable() {
        let s = small();
        assert_eq!(s.isolation_cycles(), s.isolation_cycles());
    }

    #[test]
    fn unregulated_corun_is_slower_than_isolation() {
        let s = small();
        let iso = s.isolation_cycles();
        let (t, _) = s.run(Scheme::Unregulated, 1_000_000_000);
        assert!(t > iso, "contended {t} should exceed isolation {iso}");
    }

    #[test]
    fn tc_regulation_recovers_critical_performance() {
        let s = small();
        let (unreg, _) = s.run(Scheme::Unregulated, 1_000_000_000);
        let (reg, built) = s.run(
            Scheme::Tc {
                period: 1_000,
                budget: 2_000,
            },
            1_000_000_000,
        );
        assert!(
            reg < unreg,
            "regulated ({reg}) must beat unregulated ({unreg})"
        );
        // The interferers were indeed throttled.
        let t = built.interferer_drivers[0].telemetry();
        assert!(t.stall_cycles > 0);
    }

    #[test]
    fn critical_monitor_sees_critical_bytes() {
        let s = small();
        let (_, built) = s.run(Scheme::Unregulated, 1_000_000_000);
        let telemetry = built.critical_driver.telemetry();
        assert_eq!(
            telemetry.total_bytes,
            s.critical_txns * s.critical_txn_bytes
        );
    }
}
