//! Plain-text table/series printing for the experiment binaries.
//!
//! Every `exp_*` binary prints (a) a header identifying the experiment
//! and (b) rows in a fixed-width layout that doubles as
//! whitespace-separated CSV, so output can be both read and piped into a
//! plotting script.

/// Prints the experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("# {id}: {title}");
}

/// Prints a key-value context line (parameters of the run).
pub fn context(key: &str, value: impl std::fmt::Display) {
    println!("#   {key} = {value}");
}

/// Column widths used by [`header`]/[`row`].
const COL: usize = 14;

/// Formats a header row (no trailing newline).
pub fn format_header(cols: &[&str]) -> String {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>COL$}")).collect();
    line.join(" ")
}

/// Formats a data row (no trailing newline).
pub fn format_row(cells: &[String]) -> String {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>COL$}")).collect();
    line.join(" ")
}

/// Prints a header row.
pub fn header(cols: &[&str]) {
    println!("{}", format_header(cols));
}

/// Prints a data row.
pub fn row(cells: &[String]) {
    println!("{}", format_row(cells));
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an integer.
pub fn int(v: u64) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(int(42), "42");
    }
}
