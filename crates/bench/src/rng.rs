//! Seedable xorshift64* PRNG shared by the hunt candidate generator and
//! mutation steps (std-only, no external deps).
//!
//! The hunt engine (`fgqos-hunt`) promises that `fgqos hunt --seed N` is
//! byte-reproducible: every random decision — candidate enumeration
//! order, mutation choices, tie-breaking — must derive from one declared
//! seed. This module is the single entropy source for that promise. It
//! deliberately lives in `fgqos-bench` (not the hunt crate) so harnesses
//! and experiments can share the same generator without depending on the
//! search engine.
//!
//! # Stream discipline
//!
//! [`XorShift64Star::split`] derives an independent child stream from a
//! label, so structurally different consumers (generator vs. mutator vs.
//! tie-breaker) never share a sequence position. Reordering draws inside
//! one consumer changes results — as it must for reproducibility — but
//! adding a new consumer with a fresh label leaves existing streams
//! untouched.

/// A xorshift64* generator: 64 bits of state, period 2^64 − 1, with the
/// `* 0x2545F4914F6CDD1D` output scramble (Vigna, *An experimental
/// exploration of Marsaglia's xorshift generators, scrambled*).
///
/// Deterministic across platforms: all arithmetic is explicit-width and
/// wrapping. Not cryptographic — do not use for anything but simulation
/// search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed. A zero seed (the one state
    /// xorshift cannot leave) is remapped to a fixed non-zero constant,
    /// so every `u64` is a valid seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64-style pre-scramble: consecutive small seeds (0, 1,
        // 2, ...) otherwise start in highly correlated states.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64Star {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire-style multiply-shift with a rejection pass, so the
    /// result is unbiased and the draw count is deterministic for a
    /// given state (which keeps replays byte-identical).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below needs a non-zero bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            // Reject the truncated tail; for power-of-two and small
            // bounds this almost never loops.
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive needs lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform index into a non-empty slice.
    pub fn pick_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "pick_index needs a non-empty slice");
        self.next_below(len as u64) as usize
    }

    /// Uniform choice from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.pick_index(items.len())]
    }

    /// Bernoulli draw: `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "chance needs a non-zero denominator");
        self.next_below(den) < num
    }

    /// Derives an independent child generator from a label without
    /// consuming state from `self` (see the module docs on stream
    /// discipline). Equal `(parent seed, label)` always yields the same
    /// child; different labels decorrelate.
    pub fn split(&self, label: &str) -> XorShift64Star {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        XorShift64Star::new(self.state ^ h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_valid_and_distinct_from_one() {
        let mut z = XorShift64Star::new(0);
        let mut o = XorShift64Star::new(1);
        let zs: Vec<u64> = (0..8).map(|_| z.next_u64()).collect();
        let os: Vec<u64> = (0..8).map(|_| o.next_u64()).collect();
        assert_ne!(zs, os, "adjacent seeds must decorrelate");
        assert!(zs.iter().any(|&v| v != 0));
    }

    #[test]
    fn next_below_stays_in_bounds_and_covers() {
        let mut r = XorShift64Star::new(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws cover all of [0,10)");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = XorShift64Star::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match r.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn split_is_stable_and_label_sensitive() {
        let parent = XorShift64Star::new(99);
        let mut a1 = parent.split("mutate");
        let mut a2 = parent.split("mutate");
        let mut b = parent.split("generate");
        assert_eq!(a1.next_u64(), a2.next_u64(), "same label, same stream");
        let mut a3 = parent.split("mutate");
        assert_ne!(
            (0..4).map(|_| a3.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>(),
            "different labels decorrelate"
        );
    }

    #[test]
    fn chance_is_calibrated_roughly() {
        let mut r = XorShift64Star::new(11);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "1/4 over 10k draws: {hits}");
    }

    /// Pinned first draws: the generator is part of the byte-reproducible
    /// `fgqos hunt --seed N` contract, so its sequence may never drift.
    #[test]
    fn pinned_sequence_for_seed_1() {
        let mut r = XorShift64Star::new(1);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = XorShift64Star::new(1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(got, again);
    }
}
