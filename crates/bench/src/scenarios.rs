//! Canonical benchmark SoCs shared by the Criterion micro-benchmarks
//! (`benches/simulator.rs`) and the CI perf-smoke gate (`bin/perf_smoke`).
//!
//! Keeping these builders in one place guarantees the smoke test measures
//! *exactly* the configurations whose throughput is recorded in
//! `BENCH_sim.json` — a floor check against a different SoC would be
//! meaningless.

use fgqos_core::regulator::{RegulatorConfig, TcRegulator};
use fgqos_sim::axi::Dir;
use fgqos_sim::dram::DramConfig;
use fgqos_sim::master::{MasterKind, SequentialSource};
use fgqos_sim::snapshot::SocSnapshot;
use fgqos_sim::system::{Soc, SocBuilder, SocConfig};
use fgqos_workloads::spec::{SpecSource, TrafficSpec};

/// Cycle horizon of the `soc_cycles` Criterion group.
pub const SOC_CYCLES: u64 = 100_000;

/// Cycle horizon of the `regulated_cycles` Criterion group.
pub const REGULATED_CYCLES: u64 = 1_000_000;

/// Unregulated greedy streaming SoC: `masters` accelerator ports each
/// replaying a sequential read stream over an 8 MiB footprint.
pub fn greedy_soc(masters: usize) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let mut b = SocBuilder::new(cfg);
    for i in 0..masters {
        let spec = TrafficSpec::stream((i as u64) << 28, 8 << 20, 512, Dir::Read);
        b = b.master(
            format!("m{i}"),
            SpecSource::new(spec, i as u64),
            MasterKind::Accelerator,
        );
    }
    b.build()
}

/// Tightly regulated SoC: every master spends most cycles gated by a
/// TC-regulator budget far below link rate, so the event-driven core has
/// long dead stretches to skip. This is the exp_* harness's common case.
pub fn regulated_soc(masters: usize) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let mut b = SocBuilder::new(cfg);
    for i in 0..masters {
        let (reg, _driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: 10_000,
            budget_bytes: 2_048,
            enabled: true,
            ..RegulatorConfig::default()
        });
        let spec = TrafficSpec::stream((i as u64) << 28, 8 << 20, 512, Dir::Read);
        b = b.gated_master(
            format!("m{i}"),
            SpecSource::new(spec, i as u64),
            MasterKind::Accelerator,
            reg,
        );
    }
    b.build()
}

/// Cycle horizon of the `steady_state_leap` perf case — long enough
/// that algebraic leaping dominates the wall clock.
pub const LEAP_CYCLES: u64 = 50_000_000;

/// Long saturated regulated SoC for the steady-state leap cases: two
/// unbounded sequential readers reusing a small buffer in place behind
/// tight TC-regulator budgets, DRAM refresh on. The 4 KiB footprint
/// makes the open-row pattern itself periodic, and the 1 950-cycle
/// window times the 4-window address pattern equals the 7 800-cycle
/// refresh interval — so the whole machine state recurs and the leap
/// engine can cross almost the entire horizon algebraically. This is
/// the configuration whose leap speedup is recorded in
/// `BENCH_sim.json` (`steady_state_leap`).
pub fn leap_soc() -> Soc {
    let mut b = SocBuilder::new(SocConfig::default());
    for i in 0..2u64 {
        let (reg, _driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_950,
            budget_bytes: 1_024,
            enabled: true,
            ..RegulatorConfig::default()
        });
        b = b.gated_master(
            format!("m{i}"),
            SequentialSource::reads(i << 28, 256, u64::MAX).with_footprint(4_096),
            MasterKind::Accelerator,
            reg,
        );
    }
    b.build()
}

/// Warm-up cycles run before the boundary of [`warm_start_snapshot`].
pub const WARM_START_PREFIX_CYCLES: u64 = 1_000_000;

/// Cycle horizon of the forked tail in the `warm_start` perf case.
pub const WARM_START_TAIL_CYCLES: u64 = 1_000_000;

/// Quiesced boundary snapshot of the regulated 4-master SoC after a
/// warmed-up prefix run. The `warm_start` perf case measures the sweep
/// inner loop — fork this snapshot, run the divergent tail — so the
/// prefix cost stays outside the timed region, exactly as it does in a
/// `--warm-start` experiment sweep.
pub fn warm_start_snapshot() -> SocSnapshot {
    let mut soc = regulated_soc(4);
    soc.run(WARM_START_PREFIX_CYCLES);
    soc.quiesce_point(100_000)
        .expect("tightly regulated masters quiesce within ten windows");
    soc.snapshot().expect("every benchmark component forks")
}
