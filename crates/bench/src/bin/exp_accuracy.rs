//! EXP-F2 — Regulation accuracy: configured vs. measured bandwidth.
//!
//! A single greedy streaming master is regulated to a sweep of bandwidth
//! set-points by (a) the tightly-coupled regulator with a 10 µs window
//! and (b) software MemGuard with a 1 ms tick and realistic interrupt
//! enforcement latency. The tightly-coupled regulator tracks the
//! set-point closely across the whole range; MemGuard overshoots at low
//! set-points because a greedy master blows through the budget during the
//! interrupt latency of every tick.
//!
//! A leaky-bucket variant at the same rate (depth = one window budget)
//! is included: same accuracy, different burst structure.
//!
//! Printed columns: scheme, configured MiB/s, measured MiB/s, relative
//! error %, worst bytes past the budget in any replenishment interval
//! (measured uniformly from per-window completion records).
//!
//! With `--warm-start` the sweep runs on
//! [`fgqos_bench::sweep::run_warm_groups`]: every grid point's freshly
//! built SoC is captured as a cycle-0 [`SocSnapshot`] and the measured
//! run executes on a fork of that boundary. Budgets take effect from
//! cycle 0 in every scheme (the regulator latches at window close), so
//! no two points share a simulated prefix — the groups are singletons —
//! but the warm path proves snapshot → fork → run reproduces
//! build → run byte-identically on the committed artifact, which is
//! what lets a serve fleet answer these points from stored blobs.

use fgqos_baselines::memguard::{MemGuardConfig, MemGuardGate};
use fgqos_bench::report::Report;
use fgqos_bench::{sweep, table};
use fgqos_core::bucket::{BucketConfig, LeakyBucketRegulator};
use fgqos_core::regulator::{RegulatorConfig, TcRegulator};
use fgqos_sim::axi::{Dir, MasterId};
use fgqos_sim::master::MasterKind;
use fgqos_sim::snapshot::SocSnapshot;
use fgqos_sim::system::{Soc, SocBuilder, SocConfig};
use fgqos_sim::time::{Bandwidth, Freq};
use fgqos_sim::ForkCtx;
use fgqos_workloads::spec::{SpecSource, TrafficSpec};

const RUN_CYCLES: u64 = 10_000_000;
const TC_PERIOD: u64 = 10_000; // 10 us at 1 GHz
const MG_TICK: u64 = 1_000_000; // 1 ms
const MG_IRQ: u64 = 2_000; // 2 us interrupt enforcement latency

fn greedy_source(seed: u64) -> SpecSource {
    SpecSource::new(TrafficSpec::stream(0, 16 << 20, 256, Dir::Read), seed)
}

/// Builds the regulated single-master SoC for one grid point, window
/// recording already armed. Returns the SoC plus the byte budget of one
/// replenishment interval (the overshoot reference).
fn build_point(gate_kind: &str, set_point_mib: f64) -> (Soc, u64) {
    let freq = Freq::default();
    let bw = Bandwidth::from_mib_per_s(set_point_mib);
    let mut builder = SocBuilder::new(SocConfig::default());
    // Every scheme's worst interval is measured the same way: per-window
    // completed bytes at the scheme's own replenishment interval.
    let interval = if gate_kind == "memguard" {
        MG_TICK
    } else {
        TC_PERIOD
    };
    let budget_for_interval = bw.to_window_budget(interval, freq);
    builder = match gate_kind {
        "tc-regulator" => {
            let budget = bw.to_window_budget(TC_PERIOD, freq) as u32;
            let (reg, _driver) = TcRegulator::create(RegulatorConfig {
                period_cycles: TC_PERIOD as u32,
                budget_bytes: budget,
                enabled: true,
                ..RegulatorConfig::default()
            });
            builder.gated_master("dma", greedy_source(1), MasterKind::Accelerator, reg)
        }
        "memguard" => {
            let budget = bw.to_window_budget(MG_TICK, freq);
            builder.gated_master(
                "dma",
                greedy_source(1),
                MasterKind::Accelerator,
                MemGuardGate::new(MemGuardConfig {
                    tick_cycles: MG_TICK,
                    budget_bytes: budget,
                    irq_latency_cycles: MG_IRQ,
                }),
            )
        }
        "leaky-bucket" => {
            let budget = bw.to_window_budget(TC_PERIOD, freq);
            builder.gated_master(
                "dma",
                greedy_source(1),
                MasterKind::Accelerator,
                LeakyBucketRegulator::new(BucketConfig {
                    budget_bytes: budget as u32,
                    period_cycles: TC_PERIOD as u32,
                    depth_bytes: (budget as u32).max(256),
                    ..BucketConfig::default()
                }),
            )
        }
        other => panic!("unknown scheme {other}"),
    };
    let mut soc = builder.build();
    soc.master_mut(MasterId::new(0)).record_windows(interval);
    (soc, budget_for_interval)
}

/// Runs the measured segment and reduces to (measured MiB/s, worst
/// overshoot bytes). Shared verbatim by the cold and warm paths.
fn measure(mut soc: Soc, budget_for_interval: u64) -> (f64, u64) {
    soc.run(RUN_CYCLES);
    let measured = soc.master_bandwidth(MasterId::new(0)).mib_per_s();
    let worst_window = soc
        .master_stats(MasterId::new(0))
        .window
        .as_ref()
        .expect("recording on")
        .max_window();
    (measured, worst_window.saturating_sub(budget_for_interval))
}

/// One grid point's cycle-0 boundary: the freshly built SoC captured as
/// a forkable snapshot (a fresh build is quiesced by construction).
struct Boundary {
    snap: SocSnapshot,
    budget_for_interval: u64,
}

impl Boundary {
    fn capture(gate_kind: &str, set_point_mib: f64) -> Boundary {
        let (soc, budget_for_interval) = build_point(gate_kind, set_point_mib);
        Boundary {
            snap: soc.snapshot().expect("fresh accuracy soc is forkable"),
            budget_for_interval,
        }
    }

    fn eval(&self) -> (f64, u64) {
        let mut ctx = ForkCtx::new();
        measure(self.snap.fork_with(&mut ctx), self.budget_for_interval)
    }
}

fn result_row(scheme: &str, set: f64, measured: f64, overshoot: u64) -> Vec<String> {
    vec![
        scheme.to_string(),
        table::f2(set),
        table::f2(measured),
        table::f2((measured - set) / set * 100.0),
        table::int(overshoot),
    ]
}

fn main() {
    let warm_start = std::env::args().any(|a| a == "--warm-start");

    let mut r = Report::new("exp_accuracy");
    r.banner(
        "EXP-F2",
        "regulation accuracy: configured vs. measured bandwidth",
    );
    r.context("tc window", format!("{TC_PERIOD} cycles (10 us)"));
    r.context("memguard tick/irq", format!("{MG_TICK} / {MG_IRQ} cycles"));
    r.header(&["scheme", "set_mibs", "meas_mibs", "err_pct", "overshoot_B"]);
    let points: Vec<(&str, f64)> = ["tc-regulator", "leaky-bucket", "memguard"]
        .into_iter()
        .flat_map(|scheme| {
            [64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0]
                .into_iter()
                .map(move |set| (scheme, set))
        })
        .collect();
    let rows = if warm_start {
        // Each point's budget applies from cycle 0, so its boundary is
        // its own (singleton group): snapshot the fresh build, run the
        // measurement on a fork. Output must match the cold path byte
        // for byte (CI diffs the committed artifact).
        sweep::run_warm_groups(
            points,
            |&(scheme, set)| (scheme, set.to_bits()),
            |&(scheme, bits)| Boundary::capture(scheme, f64::from_bits(bits)),
            |boundary, (scheme, set)| {
                let (measured, overshoot) = boundary.eval();
                result_row(scheme, set, measured, overshoot)
            },
        )
    } else {
        sweep::run_parallel(points, |(scheme, set)| {
            let (soc, budget) = build_point(scheme, set);
            let (measured, overshoot) = measure(soc, budget);
            result_row(scheme, set, measured, overshoot)
        })
    };
    for row in rows {
        r.row(row);
    }
    r.emit();
}
