//! EXP-F2 — Regulation accuracy: configured vs. measured bandwidth.
//!
//! A single greedy streaming master is regulated to a sweep of bandwidth
//! set-points by (a) the tightly-coupled regulator with a 10 µs window
//! and (b) software MemGuard with a 1 ms tick and realistic interrupt
//! enforcement latency. The tightly-coupled regulator tracks the
//! set-point closely across the whole range; MemGuard overshoots at low
//! set-points because a greedy master blows through the budget during the
//! interrupt latency of every tick.
//!
//! A leaky-bucket variant at the same rate (depth = one window budget)
//! is included: same accuracy, different burst structure.
//!
//! Printed columns: scheme, configured MiB/s, measured MiB/s, relative
//! error %, worst bytes past the budget in any replenishment interval
//! (measured uniformly from per-window completion records).

use fgqos_baselines::memguard::{MemGuardConfig, MemGuardGate};
use fgqos_bench::report::Report;
use fgqos_bench::{sweep, table};
use fgqos_core::bucket::{BucketConfig, LeakyBucketRegulator};
use fgqos_core::regulator::{RegulatorConfig, TcRegulator};
use fgqos_sim::axi::{Dir, MasterId};
use fgqos_sim::master::MasterKind;
use fgqos_sim::system::{SocBuilder, SocConfig};
use fgqos_sim::time::{Bandwidth, Freq};
use fgqos_workloads::spec::{SpecSource, TrafficSpec};

const RUN_CYCLES: u64 = 10_000_000;
const TC_PERIOD: u64 = 10_000; // 10 us at 1 GHz
const MG_TICK: u64 = 1_000_000; // 1 ms
const MG_IRQ: u64 = 2_000; // 2 us interrupt enforcement latency

fn greedy_source(seed: u64) -> SpecSource {
    SpecSource::new(TrafficSpec::stream(0, 16 << 20, 256, Dir::Read), seed)
}

fn measure(gate_kind: &str, set_point_mib: f64) -> (f64, u64) {
    let freq = Freq::default();
    let bw = Bandwidth::from_mib_per_s(set_point_mib);
    let mut builder = SocBuilder::new(SocConfig::default());
    // Every scheme's worst interval is measured the same way: per-window
    // completed bytes at the scheme's own replenishment interval.
    let interval = if gate_kind == "memguard" {
        MG_TICK
    } else {
        TC_PERIOD
    };
    let budget_for_interval = bw.to_window_budget(interval, freq);
    builder = match gate_kind {
        "tc-regulator" => {
            let budget = bw.to_window_budget(TC_PERIOD, freq) as u32;
            let (reg, _driver) = TcRegulator::create(RegulatorConfig {
                period_cycles: TC_PERIOD as u32,
                budget_bytes: budget,
                enabled: true,
                ..RegulatorConfig::default()
            });
            builder.gated_master("dma", greedy_source(1), MasterKind::Accelerator, reg)
        }
        "memguard" => {
            let budget = bw.to_window_budget(MG_TICK, freq);
            builder.gated_master(
                "dma",
                greedy_source(1),
                MasterKind::Accelerator,
                MemGuardGate::new(MemGuardConfig {
                    tick_cycles: MG_TICK,
                    budget_bytes: budget,
                    irq_latency_cycles: MG_IRQ,
                }),
            )
        }
        "leaky-bucket" => {
            let budget = bw.to_window_budget(TC_PERIOD, freq);
            builder.gated_master(
                "dma",
                greedy_source(1),
                MasterKind::Accelerator,
                LeakyBucketRegulator::new(BucketConfig {
                    budget_bytes: budget as u32,
                    period_cycles: TC_PERIOD as u32,
                    depth_bytes: (budget as u32).max(256),
                    ..BucketConfig::default()
                }),
            )
        }
        other => panic!("unknown scheme {other}"),
    };
    let mut soc = builder.build();
    soc.master_mut(MasterId::new(0)).record_windows(interval);
    soc.run(RUN_CYCLES);
    let measured = soc.master_bandwidth(MasterId::new(0)).mib_per_s();
    let worst_window = soc
        .master_stats(MasterId::new(0))
        .window
        .as_ref()
        .expect("recording on")
        .max_window();
    (measured, worst_window.saturating_sub(budget_for_interval))
}

fn main() {
    let mut r = Report::new("exp_accuracy");
    r.banner(
        "EXP-F2",
        "regulation accuracy: configured vs. measured bandwidth",
    );
    r.context("tc window", format!("{TC_PERIOD} cycles (10 us)"));
    r.context("memguard tick/irq", format!("{MG_TICK} / {MG_IRQ} cycles"));
    r.header(&["scheme", "set_mibs", "meas_mibs", "err_pct", "overshoot_B"]);
    let points: Vec<(&str, f64)> = ["tc-regulator", "leaky-bucket", "memguard"]
        .into_iter()
        .flat_map(|scheme| {
            [64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0]
                .into_iter()
                .map(move |set| (scheme, set))
        })
        .collect();
    let rows = sweep::run_parallel(points, |(scheme, set)| {
        let (measured, overshoot) = measure(scheme, set);
        vec![
            scheme.to_string(),
            table::f2(set),
            table::f2(measured),
            table::f2((measured - set) / set * 100.0),
            table::int(overshoot),
        ]
    });
    for row in rows {
        r.row(row);
    }
    r.emit();
}
