//! EXP-F6 — Enforcement tightness: bytes past the budget.
//!
//! A single greedy master is regulated to the same average bandwidth by
//! the tightly-coupled regulator and by software MemGuard across a range
//! of interrupt enforcement latencies. For every replenishment interval
//! the worst observed byte count is compared against the programmed
//! budget: the tightly-coupled gate (charge-at-acceptance, conservative)
//! never exceeds it, while MemGuard leaks traffic for the whole
//! interrupt latency of every interval — the leak grows linearly with
//! the IRQ latency and with the master's burst rate.
//!
//! Printed columns: scheme, interval (cycles), irq latency, budget
//! (bytes), worst interval bytes, overshoot bytes, overshoot %.

use fgqos_baselines::memguard::{MemGuardConfig, MemGuardGate};
use fgqos_bench::report::Report;
use fgqos_bench::{sweep, table};
use fgqos_core::regulator::{OvershootPolicy, RegulatorConfig, TcRegulator};
use fgqos_sim::axi::{Dir, MasterId};
use fgqos_sim::gate::PortGate;
use fgqos_sim::master::MasterKind;
use fgqos_sim::system::{SocBuilder, SocConfig};
use fgqos_workloads::spec::{SpecSource, TrafficSpec};

const RUN_CYCLES: u64 = 20_000_000;

fn run_one(gate: impl PortGate + 'static, interval: u64, budget: u64) -> (u64, u64) {
    let spec = TrafficSpec::stream(0, 16 << 20, 1024, Dir::Write);
    let mut soc = SocBuilder::new(SocConfig::default())
        .gated_master(
            "dma",
            SpecSource::new(spec, 1),
            MasterKind::Accelerator,
            gate,
        )
        .record_windows(interval)
        .build();
    soc.run(RUN_CYCLES);
    let st = soc.master_stats(MasterId::new(0));
    let worst = st.window.as_ref().expect("windows").max_window();
    (worst, worst.saturating_sub(budget))
}

fn main() {
    let mut r = Report::new("exp_enforcement");
    r.banner(
        "EXP-F6",
        "worst bytes past the budget per replenishment interval",
    );
    r.context("master", "greedy 1 KiB write stream");
    r.context("average budget", "2 GiB/s equivalent for every scheme");
    r.header(&[
        "scheme",
        "interval",
        "irq_lat",
        "budget_B",
        "worst_B",
        "overshoot_B",
        "overshoot_pct",
    ]);

    // Tightly-coupled (10 us window, conservative and final-burst
    // variants) and MemGuard (1 ms tick) across an IRQ latency sweep.
    let period = 10_000u64;
    let budget = 2 * period; // ~2 GiB/s at 1 GHz: 2 bytes/cycle
    let tick = 1_000_000u64;
    let mg_budget = 2 * tick;

    enum Point {
        Tc {
            name: &'static str,
            overshoot: OvershootPolicy,
        },
        MemGuard {
            irq: u64,
        },
    }
    let mut points = vec![
        Point::Tc {
            name: "tc-conservative",
            overshoot: OvershootPolicy::Conservative,
        },
        Point::Tc {
            name: "tc-final-burst",
            overshoot: OvershootPolicy::FinalBurst,
        },
    ];
    points.extend([500u64, 1_000, 2_000, 5_000, 10_000, 20_000].map(|irq| Point::MemGuard { irq }));

    let rows = sweep::run_parallel(points, |point| match point {
        Point::Tc { name, overshoot } => {
            let (reg, _driver) = TcRegulator::create(RegulatorConfig {
                period_cycles: period as u32,
                budget_bytes: budget as u32,
                enabled: true,
                overshoot,
                ..RegulatorConfig::default()
            });
            let (worst, over) = run_one(reg, period, budget);
            vec![
                name.into(),
                table::int(period),
                table::int(0),
                table::int(budget),
                table::int(worst),
                table::int(over),
                table::f2(over as f64 * 100.0 / budget as f64),
            ]
        }
        Point::MemGuard { irq } => {
            let gate = MemGuardGate::new(MemGuardConfig {
                tick_cycles: tick,
                budget_bytes: mg_budget,
                irq_latency_cycles: irq,
            });
            let (worst, over) = run_one(gate, tick, mg_budget);
            vec![
                "memguard".into(),
                table::int(tick),
                table::int(irq),
                table::int(mg_budget),
                table::int(worst),
                table::int(over),
                table::f2(over as f64 * 100.0 / mg_budget as f64),
            ]
        }
    });
    for row in rows {
        r.row(row);
    }
    r.emit();
}
