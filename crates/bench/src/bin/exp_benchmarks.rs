//! EXP-T2 — Benchmark kernel table.
//!
//! Each of the six modelled benchmark kernels runs as the critical actor
//! against six greedy interferers under three schemes: unregulated,
//! MemGuard (1 ms tick) and the tightly-coupled regulator (1 µs window),
//! both regulators programmed to the same average best-effort bandwidth.
//! The table reports the kernel slowdown vs. isolation under each scheme
//! and the aggregate best-effort throughput the scheme leaves to the
//! accelerators — the tightly-coupled scheme dominates: lower kernel
//! slowdown at equal best-effort bandwidth.
//!
//! Printed columns: kernel, isolation kilocycles, slowdown under each
//! scheme, best-effort GiB/s under each regulated scheme.

use fgqos_bench::report::Report;
use fgqos_bench::scenario::{Built, Scenario, Scheme};
use fgqos_bench::{sweep, table};
use fgqos_workloads::kernels::Kernel;

const ITERATIONS: u64 = 3;
const MAX_CYCLES: u64 = u64::MAX / 2;

fn be_gibs(built: &Built, cycles: u64, n: usize) -> f64 {
    let mut bytes = 0u64;
    for i in 0..n {
        let id = built.soc.master_id(&format!("dma{i}")).expect("interferer");
        bytes += built.soc.master_stats(id).bytes_completed;
    }
    bytes as f64 / cycles as f64 * 1e9 / (1024.0 * 1024.0 * 1024.0)
}

fn main() {
    let mut r = Report::new("exp_benchmarks");
    r.banner("EXP-T2", "kernel slowdown under interference, per scheme");
    let scenario = Scenario {
        interferer_txn_bytes: 512,
        critical_outstanding: 2,
        ..Scenario::default()
    };
    let n = scenario.interferers;
    r.context("interferers", format!("{n} greedy 512 B write streams"));
    r.context("memguard", "1 ms tick, 2 us irq, 1 MiB/tick per port");
    r.context("tc-regulator", "1 us window, 1 KiB/window per port");
    r.header(&[
        "kernel",
        "iso_kcyc",
        "sd_unreg",
        "sd_memguard",
        "sd_tc",
        "be_mg_gibs",
        "be_tc_gibs",
    ]);

    // One sweep point per kernel; each worker measures its own isolation
    // baseline and all three scheme co-runs.
    let rows = sweep::run_parallel(Kernel::all().to_vec(), |kernel| {
        let source = || kernel.source(0, ITERATIONS, 7);
        let iso = scenario.isolation_cycles_with(source());

        let run = |scheme: Scheme| -> (f64, f64) {
            let mut built = scenario.build_with_critical(source(), scheme);
            let cycles = built
                .soc
                .run_until_done(built.critical, MAX_CYCLES)
                .expect("kernel finishes")
                .get();
            (cycles as f64 / iso as f64, be_gibs(&built, cycles, n))
        };

        let (sd_unreg, _) = run(Scheme::Unregulated);
        let (sd_mg, be_mg) = run(Scheme::MemGuard {
            tick: 1_000_000,
            budget: 1_048_576,
            irq: 2_000,
        });
        let (sd_tc, be_tc) = run(Scheme::Tc {
            period: 1_000,
            budget: 1_024,
        });

        vec![
            kernel.name().into(),
            table::int(iso / 1_000),
            table::f2(sd_unreg),
            table::f2(sd_mg),
            table::f2(sd_tc),
            table::f2(be_mg),
            table::f2(be_tc),
        ]
    });
    for row in rows {
        r.row(row);
    }
    r.emit();
}
