//! EXP-B — Analytical worst-case bound vs. observed worst case.
//!
//! For a sweep of regulated co-run configurations, compares the
//! conservative analytical delay bound of
//! [`fgqos_core::analysis::SystemModel`] with the worst latency the
//! simulator actually observes. The bound must dominate every
//! observation (validated continuously by `tests/bounds.rs`); the
//! tightness ratio reported here shows the price of analysability.
//!
//! Printed columns: ports, period, budget per window, analytic
//! utilization, observed max latency, bound, tightness (bound/observed).

use fgqos_bench::report::Report;
use fgqos_bench::{sweep, table};
use fgqos_core::analysis::{PortModel, SystemModel};
use fgqos_core::regulator::{RegulatorConfig, TcRegulator};
use fgqos_sim::axi::{Dir, BEAT_BYTES};
use fgqos_sim::dram::DramConfig;
use fgqos_sim::interconnect::XbarConfig;
use fgqos_sim::master::MasterKind;
use fgqos_sim::system::{SocBuilder, SocConfig};
use fgqos_workloads::spec::{SpecSource, TrafficSpec};

fn observe(ports: usize, period: u32, budget: u32, txn_bytes: u64, seed: u64) -> u64 {
    let critical = TrafficSpec::latency_sensitive(0, 4 << 20, 256, 100).with_total(3_000);
    let (crit_monitor, _d) = TcRegulator::monitor_only(1_000);
    let mut builder = SocBuilder::new(SocConfig::default()).master_full(
        "critical",
        SpecSource::new(critical, seed),
        MasterKind::Cpu,
        crit_monitor,
        1,
    );
    for i in 0..ports {
        let (reg, _driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: period,
            budget_bytes: budget,
            enabled: true,
            ..RegulatorConfig::default()
        });
        let spec = TrafficSpec::stream((1 + i as u64) << 28, 16 << 20, txn_bytes, Dir::Write);
        builder = builder.gated_master(
            format!("dma{i}"),
            SpecSource::new(spec, seed + 10 + i as u64),
            MasterKind::Accelerator,
            reg,
        );
    }
    let mut soc = builder.build();
    let id = soc.master_id("critical").expect("critical");
    soc.run_until_done(id, u64::MAX / 2).expect("finishes");
    soc.master_stats(id).latency.max()
}

fn main() {
    let mut r = Report::new("exp_bounds");
    r.banner(
        "EXP-B",
        "analytical worst-case delay bound vs. observed worst case",
    );
    r.context("critical", "256 B random closed-loop reads");
    r.header(&[
        "ports",
        "period",
        "budget_B",
        "util",
        "observed",
        "bound",
        "tightness",
    ]);
    let txn_bytes = 512u64;
    let configs: Vec<(usize, u32, u32)> = vec![
        (1, 1_000, 512),
        (2, 1_000, 512),
        (4, 1_000, 512),
        (6, 1_000, 512),
        (4, 1_000, 1_024),
        (4, 2_000, 1_024),
        (4, 5_000, 2_560),
    ];
    let rows = sweep::run_parallel(configs, |(ports, period, budget)| {
        let model = SystemModel {
            dram: DramConfig::default(),
            fifo_depth: XbarConfig::default().port_fifo_depth as u64,
            ports: vec![
                PortModel {
                    period_cycles: period as u64,
                    budget_bytes: budget as u64,
                    max_outstanding: 8,
                    txn_bytes,
                };
                ports
            ],
            critical_beats: 256 / BEAT_BYTES,
        };
        let bound = model.critical_delay_bound().expect("bound converges");
        let observed = observe(ports, period, budget, txn_bytes, 7);
        vec![
            table::int(ports as u64),
            table::int(period as u64),
            table::int(budget as u64),
            table::f2(model.regulated_utilization()),
            table::int(observed),
            table::int(bound),
            table::f2(bound as f64 / observed as f64),
        ]
    });
    for row in rows {
        r.row(row);
    }
    r.emit();
}
