//! Renders the experiment book from the JSON artifacts.
//!
//! Every `exp_*` binary writes a schema-versioned `results/<exp>.json`
//! (see [`fgqos_bench::report`]). This binary turns those artifacts back
//! into the two human-readable views, byte-identically and without
//! re-running any simulation:
//!
//! * `results/<exp>.txt` — the exact stdout table of the recorded run;
//! * the measured blocks of `EXPERIMENTS.md`, delimited by
//!   `<!-- measured:begin <exp> -->` / `<!-- measured:end <exp> -->`
//!   marker comments (long tables are truncated deterministically; the
//!   artifact keeps every row).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fgqos-bench --bin render_book           # rewrite
//! cargo run --release -p fgqos-bench --bin render_book -- --check # CI drift check
//! ```
//!
//! `--check` rewrites nothing; it exits non-zero listing every file
//! whose on-disk bytes differ from what the artifacts produce.

use fgqos_bench::report::{Block, Report};
use fgqos_sim::json::Value;
use std::path::{Path, PathBuf};

/// Data rows kept per table when rendering a measured block into
/// `EXPERIMENTS.md`; the full table stays in the artifact and the
/// rendered `results/<exp>.txt`.
const BOOK_MAX_ROWS: usize = 12;

fn workspace_root() -> PathBuf {
    // crates/bench/ -> workspace root, independent of the cwd cargo ran in.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn results_dir(root: &Path) -> PathBuf {
    std::env::var_os("FGQOS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("results"))
}

/// Renders the truncated measured block for `EXPERIMENTS.md`: the same
/// line layout as the stdout table, but each run of consecutive data
/// rows is capped at [`BOOK_MAX_ROWS`] with an elision note.
fn render_measured(report: &Report) -> String {
    let mut out = String::from("```text\n");
    let mut run = 0usize; // consecutive Row blocks seen
    let mut elided = 0usize;
    let flush_elision = |out: &mut String, elided: &mut usize| {
        if *elided > 0 {
            out.push_str(&format!("  ... ({} more rows in the artifact)\n", *elided));
            *elided = 0;
        }
    };
    for block in report.blocks() {
        match block {
            Block::Row(_) => {
                run += 1;
                if run > BOOK_MAX_ROWS {
                    elided += 1;
                    continue;
                }
            }
            _ => {
                flush_elision(&mut out, &mut elided);
                run = 0;
            }
        }
        let mut one = Report::new(report.exp());
        one_block(&mut one, block);
        out.push_str(&one.render_text());
    }
    flush_elision(&mut out, &mut elided);
    out.push_str("```\n");
    out
}

fn one_block(r: &mut Report, block: &Block) {
    match block {
        Block::Banner { id, title } => r.banner(id, title),
        Block::Context { key, value } => r.context(key, value),
        Block::Note(text) => r.note(text.clone()),
        Block::Header(cells) => {
            let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
            r.header(&refs);
        }
        Block::Row(cells) => r.row(cells.clone()),
        Block::Blank => r.blank(),
    }
}

/// Replaces the interior of every `<!-- measured:begin <exp> -->` block
/// for which an artifact exists. Markers without an artifact are left
/// untouched (with a warning); malformed marker pairs are an error.
fn splice_book(book: &str, reports: &[Report]) -> Result<String, String> {
    let mut out = book.to_string();
    for report in reports {
        let begin = format!("<!-- measured:begin {} -->", report.exp());
        let end = format!("<!-- measured:end {} -->", report.exp());
        let Some(b) = out.find(&begin) else {
            eprintln!(
                "warning: EXPERIMENTS.md has no measured block for {}",
                report.exp()
            );
            continue;
        };
        let interior_start = b + begin.len();
        let Some(rel_e) = out[interior_start..].find(&end) else {
            return Err(format!("unterminated measured block for {}", report.exp()));
        };
        let interior_end = interior_start + rel_e;
        let replacement = format!("\n{}", render_measured(report));
        out.replace_range(interior_start..interior_end, &replacement);
    }
    Ok(out)
}

/// One output file of the render: destination and expected bytes.
struct Rendered {
    path: PathBuf,
    content: String,
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let root = workspace_root();
    let dir = results_dir(&root);

    // Load every artifact, sorted by file name for deterministic order.
    let mut names: Vec<String> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!(
            "error: no *.json artifacts in {} — run the exp_* binaries first",
            dir.display()
        );
        std::process::exit(2);
    }

    let mut reports = Vec::new();
    for name in &names {
        let path = dir.join(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let doc = match Value::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {} is not valid JSON: {e}", path.display());
                std::process::exit(2);
            }
        };
        match Report::from_json(&doc) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    // Planned outputs: one txt per artifact + the spliced book.
    let mut outputs: Vec<Rendered> = reports
        .iter()
        .map(|r| Rendered {
            path: dir.join(format!("{}.txt", r.exp())),
            content: r.render_text(),
        })
        .collect();
    let book_path = root.join("EXPERIMENTS.md");
    let book = match std::fs::read_to_string(&book_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", book_path.display());
            std::process::exit(2);
        }
    };
    match splice_book(&book, &reports) {
        Ok(spliced) => outputs.push(Rendered {
            path: book_path,
            content: spliced,
        }),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }

    if check {
        let mut drifted = Vec::new();
        for o in &outputs {
            let on_disk = std::fs::read_to_string(&o.path).unwrap_or_default();
            if on_disk != o.content {
                drifted.push(o.path.display().to_string());
            }
        }
        if drifted.is_empty() {
            println!("render_book: {} files up to date", outputs.len());
        } else {
            eprintln!("render_book: drift detected in:");
            for d in &drifted {
                eprintln!("  {d}");
            }
            eprintln!("run `cargo run --release -p fgqos-bench --bin render_book` to refresh");
            std::process::exit(1);
        }
    } else {
        for o in &outputs {
            if let Err(e) = std::fs::write(&o.path, &o.content) {
                eprintln!("error: cannot write {}: {e}", o.path.display());
                std::process::exit(2);
            }
        }
        println!("render_book: wrote {} files", outputs.len());
    }
}
