//! CI perf-smoke gate: quick throughput check of the contended-path
//! benchmark cases against the floors recorded in `BENCH_sim.json`.
//!
//! Runs the `soc_cycles/8` (greedy 8-master) and `regulated_cycles/fast`
//! (4 regulated masters) scenarios inline — best-of-N wall-clock, no
//! Criterion — plus the `warm_start` case: fork the shared boundary
//! snapshot and run the divergent tail, the inner loop of every
//! `--warm-start` sweep (the snapshot is captured once, outside the
//! timed region), and the snapshot-blob serialize/deserialize MB/s
//! cases gating the persistent warm-boundary store's encode and
//! fingerprint-verified load paths. Fails if any case falls below
//! `threshold × recorded floor`. The threshold defaults to 0.7 (a drop
//! of more than 30 % fails) and is tunable via `FGQOS_PERF_THRESHOLD`
//! so noisy runners can widen the gate without editing the workflow.
//!
//! ```text
//! cargo run --release -p fgqos-bench --bin perf_smoke
//! FGQOS_PERF_THRESHOLD=0.5 cargo run --release -p fgqos-bench --bin perf_smoke
//! ```
//!
//! The scenarios come from [`fgqos_bench::scenarios`] — the same builders
//! the Criterion benches measure — so the floor comparison is
//! apples-to-apples with `BENCH_sim.json`.

use fgqos_bench::scenarios::{
    greedy_soc, leap_soc, regulated_soc, warm_start_snapshot, LEAP_CYCLES, REGULATED_CYCLES,
    SOC_CYCLES, WARM_START_TAIL_CYCLES,
};
use fgqos_sim::json::Value;
use fgqos_sim::snapshot::SocSnapshot;
use fgqos_sim::system::Soc;
use fgqos_sim::SnapshotBlob;
use std::path::Path;
use std::time::Instant;

/// Best-of-`reps` throughput in Melem/s (simulated cycles per wall-µs).
fn measure(build: impl Fn() -> Soc, cycles: u64, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut soc = build();
        let t0 = Instant::now();
        soc.run(cycles);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    cycles as f64 / best / 1e6
}

/// Best-of-`reps` snapshot blob serialize / deserialize throughput in
/// MB/s over the encoded blob size. Serialize is the full
/// capture-to-bytes path (`to_blob` + `encode`); deserialize is
/// `decode` + `load_into` a pre-built skeleton (the skeleton build
/// stays outside the timed region, as it would when a worker loads a
/// warm boundary some peer stored).
fn measure_blob(reps: usize) -> (f64, f64) {
    let snap = warm_start_snapshot();
    let mut bytes = Vec::new();
    let mut ser_best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let blob = snap.to_blob("perf-smoke");
        bytes = blob.encode();
        ser_best = ser_best.min(t0.elapsed().as_secs_f64());
    }
    let mut de_best = f64::INFINITY;
    for _ in 0..reps {
        let skeleton = regulated_soc(4);
        let t0 = Instant::now();
        let blob = SnapshotBlob::decode(&bytes).expect("perf-smoke blob decodes");
        let _ = SocSnapshot::load_into(skeleton, &blob).expect("perf-smoke blob loads");
        de_best = de_best.min(t0.elapsed().as_secs_f64());
    }
    let mb = bytes.len() as f64 / 1e6;
    (mb / ser_best, mb / de_best)
}

/// The latest recorded floors: `BENCH_sim.json` is append-only, so the
/// newest entry holding each micro number wins.
fn floors(doc: &Value) -> Option<(f64, f64, f64, f64, f64, f64)> {
    // The steady-state leap engine runs by default, and its aperiodic
    // fingerprint tax (O(log horizon) snapshot walks) lands on exactly
    // these fixed-horizon cases — so their floors come from the
    // `aperiodic_tax_rebaseline` block, the calendar_arena /
    // snapshot_warm_start floors scaled by the measured same-binary
    // leap-on/leap-off ratio.
    let rebase = doc
        .get("steady_state_leap")?
        .get("aperiodic_tax_rebaseline")?;
    let m8 = rebase.get("soc_cycles_8_melem_per_s")?.as_f64()?;
    let reg = rebase.get("regulated_cycles_fast_melem_per_s")?.as_f64()?;
    let warm = rebase.get("warm_start_melem_per_s")?.as_f64()?;
    let blob = doc.get("snapshot_blob")?;
    let ser = blob.get("serialize_mb_per_s")?.as_f64()?;
    let de = blob.get("deserialize_mb_per_s")?.as_f64()?;
    let leap = doc
        .get("steady_state_leap")?
        .get("leap_on_melem_per_s")?
        .as_f64()?;
    Some((m8, reg, warm, ser, de, leap))
}

fn main() {
    let threshold: f64 = std::env::var("FGQOS_PERF_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.7);

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("BENCH_sim.json"))
        .expect("BENCH_sim.json not found at workspace root");
    let doc = Value::parse(&text).expect("BENCH_sim.json is not valid JSON");
    let (floor_m8, floor_reg, floor_warm, floor_ser, floor_de, floor_leap) = floors(&doc).expect(
        "BENCH_sim.json missing calendar_arena / snapshot_warm_start / snapshot_blob / \
             steady_state_leap floors",
    );

    let m8 = measure(|| greedy_soc(8), SOC_CYCLES, 5);
    let reg = measure(|| regulated_soc(4), REGULATED_CYCLES, 5);
    // The boundary snapshot is captured once, outside the timed region:
    // the case gates the fork + divergent-tail cost only.
    let snap = warm_start_snapshot();
    let warm = measure(|| snap.fork(), WARM_START_TAIL_CYCLES, 5);
    let (ser, de) = measure_blob(5);
    // Steady-state leap throughput: the engine must keep crossing the
    // saturated regulated horizon algebraically. A regression here means
    // detection stopped firing (a new snap field breaking lockstep, a
    // component dropping its leap_support opt-in), not ordinary slowdown
    // — the gated number is orders of magnitude above cycle stepping.
    let leap = measure(leap_soc, LEAP_CYCLES, 3);

    let mut failed = false;
    for (name, got, floor, unit) in [
        ("soc_cycles/8", m8, floor_m8, "Melem/s"),
        ("regulated_cycles/fast", reg, floor_reg, "Melem/s"),
        ("warm_start", warm, floor_warm, "Melem/s"),
        ("snapshot_serialize", ser, floor_ser, "MB/s"),
        ("snapshot_deserialize", de, floor_de, "MB/s"),
        ("steady_state_leap", leap, floor_leap, "Melem/s"),
    ] {
        let min = floor * threshold;
        let ok = got >= min;
        failed |= !ok;
        println!(
            "perf_smoke: {name:<22} {got:9.1} {unit:<7}  floor {floor:8.1}  min {min:8.1}  {}",
            if ok { "ok" } else { "FAIL" }
        );
    }
    if failed {
        eprintln!(
            "perf_smoke: throughput below {:.0}% of the BENCH_sim.json floor \
             (override with FGQOS_PERF_THRESHOLD)",
            threshold * 100.0
        );
        std::process::exit(1);
    }
}
