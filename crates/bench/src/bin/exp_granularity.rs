//! EXP-F3 — Regulation granularity: what a fine window buys.
//!
//! Three interferers are each regulated to the *same average bandwidth*
//! (1 GiB/s) while the replenishment period is swept from 0.5 µs to 2 ms.
//! Because the budget scales with the period, a coarse period lets each
//! interferer dump its whole (large) budget back-to-back at the window
//! start: the average interfering bandwidth is identical, but the
//! critical actor sees ever longer fully-saturated episodes. The
//! millisecond end of the sweep is where a software regulator (OS tick)
//! is forced to operate; the microsecond end is only reachable by the
//! tightly-coupled IP.
//!
//! **Sweep protocol.** Every grid point shares an identical warm-up
//! phase: the interferers run from cycle 0 under the *base* regulation
//! config (10 k-cycle window at the same 1 GiB/s average) while the
//! critical actor stays silent. Just before the launch cycle `W0` the
//! SoC reaches a quiesced boundary (a throttle gap drains the pipeline),
//! the point's period/budget is programmed into the regulators, and the
//! critical kernel launches at exactly `W0`. Every reported metric is
//! measured from `W0`: slowdown and interferer bandwidth over
//! `[W0, done)`, latency percentiles from the critical's samples (all
//! post-launch by construction), starvation episodes from the progress
//! windows at and after the launch window.
//!
//! By default each point replays the warm-up from cycle 0. With
//! `--warm-start` the boundary is captured **once** as a
//! [`SocSnapshot`] and forked per point — byte-identical output by the
//! fork-vs-cold property (`tests/snapshot.rs`), at a fraction of the
//! wall-clock (recorded in `BENCH_sim.json`).
//!
//! Printed columns: period (cycles), per-window budget (bytes), critical
//! slowdown, critical p50/p99 latency, longest starvation episode (µs,
//! consecutive 10 µs windows in which the critical actor made <50 % of
//! its isolation-rate progress), interferer achieved MiB/s.

use fgqos_bench::report::Report;
use fgqos_bench::scenario::{Built, Scenario, Scheme};
use fgqos_bench::{sweep, table};
use fgqos_core::driver::RegulatorDriver;
use fgqos_sim::axi::MasterId;
use fgqos_sim::snapshot::SocSnapshot;
use fgqos_sim::system::Soc;
use fgqos_sim::time::{Bandwidth, Freq};
use fgqos_sim::ForkCtx;

const PROGRESS_WINDOW: u64 = 10_000; // 10 us progress buckets

/// Launch cycle `W0` of the critical kernel; the shared warm-up phase
/// covers `[0, W0)`. A multiple of [`PROGRESS_WINDOW`] so starvation
/// accounting slices cleanly at the launch window.
const WARMUP_CYCLES: u64 = 60_000_000;

/// Cycles before `W0` the quiesce search starts: several base windows,
/// so a throttle gap is guaranteed to drain the pipeline in range.
const QUIESCE_MARGIN: u64 = 50_000;

/// Regulation window of the shared warm-up phase (same 1 GiB/s average
/// as every grid point).
const BASE_PERIOD: u64 = 10_000;

/// Longest run of consecutive progress windows below `threshold` bytes.
fn longest_starvation(windows: &[u64], threshold: u64) -> u64 {
    let mut worst = 0u64;
    let mut run = 0u64;
    for &w in windows {
        if w < threshold {
            run += 1;
            worst = worst.max(run);
        } else {
            run = 0;
        }
    }
    worst * PROGRESS_WINDOW
}

fn scenario() -> Scenario {
    Scenario {
        interferers: 3,
        interferer_txn_bytes: 512,
        critical_txns: 30_000,
        critical_start: WARMUP_CYCLES,
        ..Scenario::default()
    }
}

fn per_interferer() -> Bandwidth {
    Bandwidth::from_mib_per_s(1024.0)
}

/// Builds the co-run system under the base config and runs the shared
/// warm-up phase to its quiesced boundary just before launch.
fn warmed_prefix() -> Built {
    let freq = Freq::default();
    let base_budget = per_interferer().to_window_budget(BASE_PERIOD, freq);
    let mut built = scenario().build(Scheme::Tc {
        period: BASE_PERIOD as u32,
        budget: base_budget.min(u32::MAX as u64) as u32,
    });
    built
        .soc
        .master_mut(built.critical)
        .record_windows(PROGRESS_WINDOW);
    built.soc.run(WARMUP_CYCLES - QUIESCE_MARGIN);
    built
        .soc
        .quiesce_point(QUIESCE_MARGIN)
        .expect("base-regulated warm-up reaches a quiesced boundary before launch");
    built
}

/// Programs the point config at the boundary, runs the measured tail
/// and reduces it to a report row. Identical for cold and warm runs:
/// the `soc` is either the warmed-up original or a fork of its
/// snapshot, and `drivers` are the matching (possibly rebound) handles.
fn measure(
    soc: &mut Soc,
    critical: MasterId,
    drivers: &[RegulatorDriver],
    period: u64,
    iso: u64,
    iso_rate_per_window: u64,
) -> Vec<String> {
    let freq = Freq::default();
    let budget = per_interferer().to_window_budget(period, freq);
    for d in drivers {
        d.set_period_cycles(period as u32);
        d.set_budget_bytes(budget.min(u32::MAX as u64) as u32);
    }
    // Settle from the quiesced boundary to the launch cycle.
    soc.run(WARMUP_CYCLES - soc.now().get());
    let intf = soc.master_id("dma0").expect("dma0");
    let intf_bytes_at_launch = soc.master_stats(intf).bytes_completed;

    let done = soc
        .run_until_done(critical, u64::MAX / 2)
        .expect("critical finishes")
        .get();
    let measured = done - WARMUP_CYCLES;

    let st = soc.master_stats(critical);
    let windows = st.window.as_ref().expect("recording enabled").windows();
    let launch_window = (WARMUP_CYCLES / PROGRESS_WINDOW) as usize;
    let starve = longest_starvation(
        &windows[launch_window.min(windows.len())..],
        iso_rate_per_window / 2,
    );
    let intf_delta = soc.master_stats(intf).bytes_completed - intf_bytes_at_launch;
    let intf_bw = Bandwidth::from_bytes_over(intf_delta, measured.max(1), freq);
    vec![
        table::int(period),
        table::int(budget),
        table::f2(measured as f64 / iso as f64),
        table::int(st.latency.percentile(0.50)),
        table::int(st.latency.percentile(0.99)),
        table::f2(starve as f64 / 1_000.0),
        table::f2(intf_bw.mib_per_s()),
    ]
}

/// The warm-start prefix state: the boundary snapshot plus the driver
/// handles each fork rebinds through its own [`ForkCtx`].
struct WarmBoundary {
    snap: SocSnapshot,
    critical: MasterId,
    drivers: Vec<RegulatorDriver>,
}

impl WarmBoundary {
    fn capture() -> Self {
        let Built {
            soc,
            critical,
            interferer_drivers,
            ..
        } = warmed_prefix();
        let snap = soc
            .snapshot()
            .expect("boundary is quiesced and every component forks");
        WarmBoundary {
            snap,
            critical,
            drivers: interferer_drivers,
        }
    }

    fn eval(&self, period: u64, iso: u64, iso_rate_per_window: u64) -> Vec<String> {
        let mut ctx = ForkCtx::new();
        let mut soc = self.snap.fork_with(&mut ctx);
        let drivers: Vec<RegulatorDriver> =
            self.drivers.iter().map(|d| d.forked(&mut ctx)).collect();
        measure(
            &mut soc,
            self.critical,
            &drivers,
            period,
            iso,
            iso_rate_per_window,
        )
    }
}

fn main() {
    let warm_start = std::env::args().any(|a| a == "--warm-start");

    let mut r = Report::new("exp_granularity");
    r.banner(
        "EXP-F3",
        "critical tail latency and starvation episodes vs. regulation period",
    );
    let scn = scenario();
    let iso = scn.isolation_cycles();
    // Isolation progress rate per 10 us window.
    let iso_bytes = scn.critical_txns * scn.critical_txn_bytes;
    let iso_rate_per_window = iso_bytes * PROGRESS_WINDOW / iso;
    r.context("interferers", "3 × 512 B greedy streams @ 1 GiB/s each");
    r.context("isolation_cycles", iso);
    r.context(
        "warmup",
        format!(
            "interferers at base period {BASE_PERIOD} for {WARMUP_CYCLES} cycles; \
             critical launches at the boundary, metrics measured from launch"
        ),
    );
    r.context(
        "starvation threshold",
        format!("{} B / 10 us", iso_rate_per_window / 2),
    );
    r.header(&[
        "period_cyc",
        "budget_B",
        "slowdown",
        "p50_lat",
        "p99_lat",
        "starve_us",
        "intf_mibs",
    ]);

    let periods: Vec<u64> = vec![
        500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 2_000_000,
    ];
    let rows = if warm_start {
        // One shared prefix for the whole grid: capture the boundary
        // once, fork per point.
        sweep::run_warm_groups(
            periods,
            |_| (),
            |()| WarmBoundary::capture(),
            |boundary, period| boundary.eval(period, iso, iso_rate_per_window),
        )
    } else {
        sweep::run_parallel(periods, |period| {
            let mut built = warmed_prefix();
            measure(
                &mut built.soc,
                built.critical,
                &built.interferer_drivers,
                period,
                iso,
                iso_rate_per_window,
            )
        })
    };
    for row in rows {
        r.row(row);
    }
    r.emit();
}
