//! EXP-F3 — Regulation granularity: what a fine window buys.
//!
//! Three interferers are each regulated to the *same average bandwidth*
//! (1 GiB/s) while the replenishment period is swept from 0.5 µs to 2 ms.
//! Because the budget scales with the period, a coarse period lets each
//! interferer dump its whole (large) budget back-to-back at the window
//! start: the average interfering bandwidth is identical, but the
//! critical actor sees ever longer fully-saturated episodes. The
//! millisecond end of the sweep is where a software regulator (OS tick)
//! is forced to operate; the microsecond end is only reachable by the
//! tightly-coupled IP.
//!
//! Printed columns: period (cycles), per-window budget (bytes), critical
//! slowdown, critical p50/p99 latency, longest starvation episode (µs,
//! consecutive 10 µs windows in which the critical actor made <50 % of
//! its isolation-rate progress), interferer achieved MiB/s.

use fgqos_bench::report::Report;
use fgqos_bench::scenario::{Scenario, Scheme};
use fgqos_bench::{sweep, table};
use fgqos_sim::time::{Bandwidth, Freq};

const PROGRESS_WINDOW: u64 = 10_000; // 10 us progress buckets

/// Longest run of consecutive progress windows below `threshold` bytes.
fn longest_starvation(windows: &[u64], threshold: u64) -> u64 {
    let mut worst = 0u64;
    let mut run = 0u64;
    for &w in windows {
        if w < threshold {
            run += 1;
            worst = worst.max(run);
        } else {
            run = 0;
        }
    }
    worst * PROGRESS_WINDOW
}

fn main() {
    let mut r = Report::new("exp_granularity");
    r.banner(
        "EXP-F3",
        "critical tail latency and starvation episodes vs. regulation period",
    );
    let scenario = Scenario {
        interferers: 3,
        interferer_txn_bytes: 512,
        critical_txns: 30_000,
        ..Scenario::default()
    };
    let freq = Freq::default();
    let per_interferer = Bandwidth::from_mib_per_s(1024.0);
    let iso = scenario.isolation_cycles();
    // Isolation progress rate per 10 us window.
    let iso_bytes = scenario.critical_txns * scenario.critical_txn_bytes;
    let iso_rate_per_window = iso_bytes * PROGRESS_WINDOW / iso;
    r.context("interferers", "3 × 512 B greedy streams @ 1 GiB/s each");
    r.context("isolation_cycles", iso);
    r.context(
        "starvation threshold",
        format!("{} B / 10 us", iso_rate_per_window / 2),
    );
    r.header(&[
        "period_cyc",
        "budget_B",
        "slowdown",
        "p50_lat",
        "p99_lat",
        "starve_us",
        "intf_mibs",
    ]);

    let periods: Vec<u64> = vec![
        500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 2_000_000,
    ];
    let rows = sweep::run_parallel(periods, |period| {
        let budget = per_interferer.to_window_budget(period, freq);
        let scheme = Scheme::Tc {
            period: period as u32,
            budget: budget.min(u32::MAX as u64) as u32,
        };
        let mut built = scenario.build(scheme);
        built
            .soc
            .master_mut(built.critical)
            .record_windows(PROGRESS_WINDOW);
        let cycles = built
            .soc
            .run_until_done(built.critical, u64::MAX / 2)
            .expect("critical finishes")
            .get();
        let st = built.soc.master_stats(built.critical);
        let starve = longest_starvation(
            st.window.as_ref().expect("recording enabled").windows(),
            iso_rate_per_window / 2,
        );
        let intf = built.soc.master_id("dma0").expect("dma0");
        let intf_bw = built.soc.master_bandwidth(intf);
        vec![
            table::int(period),
            table::int(budget),
            table::f2(cycles as f64 / iso as f64),
            table::int(st.latency.percentile(0.50)),
            table::int(st.latency.percentile(0.99)),
            table::f2(starve as f64 / 1_000.0),
            table::f2(intf_bw.mib_per_s()),
        ]
    });
    for row in rows {
        r.row(row);
    }
    r.emit();
}
