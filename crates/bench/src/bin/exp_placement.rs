//! EXP-P — Regulator placement: per-port (tightly-coupled) vs. shared.
//!
//! The title's "tightly-coupled" is a placement claim: one regulator per
//! master port. The cheaper alternative is a single regulator with one
//! aggregate budget at the shared interconnect port. Two results:
//!
//! 1. **Symmetric masters** — with AXI backpressure-and-retry semantics,
//!    the shared pool is approximately fair at window boundaries: both
//!    placements deliver the same totals (an honest null result; the
//!    pool does not collapse under symmetric load).
//! 2. **Differentiated QoS** — the moment the integrator wants
//!    *asymmetric* shares (the "fine-grained control" of the title: say
//!    3/4 of the best-effort bandwidth to one accelerator), the shared
//!    pool has no mechanism at all: every port converges to an equal
//!    share. Per-port budgets implement the target to within a few
//!    percent.
//!
//! Printed: per-BE achieved vs. target MiB/s for both placements and the
//! worst relative target error.

use fgqos_bench::report::Report;
use fgqos_bench::{sweep, table};
use fgqos_core::regulator::{RegulatorConfig, TcRegulator};
use fgqos_core::shared::SharedRegulator;
use fgqos_sim::axi::Dir;
use fgqos_sim::master::MasterKind;
use fgqos_sim::system::{Soc, SocBuilder, SocConfig};
use fgqos_sim::time::{Bandwidth, Freq};
use fgqos_workloads::spec::{SpecSource, TrafficSpec};

const PERIOD: u64 = 1_000;
/// Per-port byte budgets per window: 3/4 of the pool to dma0.
const TARGETS: [u64; 4] = [3_072, 512, 512, 512];
const RUN_CYCLES: u64 = 10_000_000;

fn be_spec(i: usize) -> TrafficSpec {
    TrafficSpec::stream((1 + i as u64) << 28, 16 << 20, 512, Dir::Write)
}

fn build(shared: bool) -> Soc {
    let mut builder = SocBuilder::new(SocConfig::default());
    let group = SharedRegulator::new(PERIOD, TARGETS.iter().sum());
    for (i, &budget) in TARGETS.iter().enumerate() {
        let source = SpecSource::new(be_spec(i), 100 + i as u64);
        builder = if shared {
            builder.gated_master(
                format!("dma{i}"),
                source,
                MasterKind::Accelerator,
                group.port_gate(),
            )
        } else {
            let (reg, _driver) = TcRegulator::create(RegulatorConfig {
                period_cycles: PERIOD as u32,
                budget_bytes: budget as u32,
                enabled: true,
                ..RegulatorConfig::default()
            });
            builder.gated_master(format!("dma{i}"), source, MasterKind::Accelerator, reg)
        };
    }
    builder.build()
}

fn main() {
    let mut r = Report::new("exp_placement");
    r.banner(
        "EXP-P",
        "per-port (tightly-coupled) vs shared-budget regulator placement",
    );
    let freq = Freq::default();
    let total: u64 = TARGETS.iter().sum();
    r.context("aggregate budget", format!("{total} B / {PERIOD} cycles"));
    r.context(
        "targets",
        "dma0 gets 3/4 of the pool, dma1-3 split the rest",
    );
    r.header(&[
        "placement",
        "port",
        "target_mibs",
        "achieved_mibs",
        "err_pct",
    ]);

    let sections = sweep::run_parallel(
        vec![("per-port", false), ("shared", true)],
        |(name, shared)| {
            let mut soc = build(shared);
            soc.run(RUN_CYCLES);
            let mut worst = 0.0f64;
            let mut rows = Vec::new();
            for (i, &budget) in TARGETS.iter().enumerate() {
                let target = Bandwidth::from_bytes_over(budget, PERIOD, freq).mib_per_s();
                let id = soc.master_id(&format!("dma{i}")).expect("dma");
                let achieved = soc.master_bandwidth(id).mib_per_s();
                let err = (achieved - target) / target * 100.0;
                worst = worst.max(err.abs());
                rows.push(vec![
                    name.into(),
                    format!("dma{i}"),
                    table::f2(target),
                    table::f2(achieved),
                    table::f2(err),
                ]);
            }
            (name, rows, worst)
        },
    );
    for (name, rows, worst) in sections {
        for row in rows {
            r.row(row);
        }
        r.note(format!("{name}: worst target error {worst:.1} %"));
    }
    r.emit();
}
