//! Outcome ablations of the regulator's design choices (DESIGN.md §4).
//!
//! Four design decisions of the IP are flipped one at a time in the
//! standard co-run scenario (1 critical + 6 regulated interferers at
//! 1 KiB/µs each):
//!
//! 1. **Charge point** — debit at the address handshake vs. at
//!    completion. Completion charging leaves in-flight bytes unaccounted
//!    and overshoots by up to `outstanding × burst` per window.
//! 2. **Overshoot policy** — conservative (burst must fit) vs.
//!    final-burst (admit while any budget remains).
//! 3. **Arbitration** — round-robin vs. fixed-priority-for-critical at
//!    the crossbar, interacting with regulation.
//! 4. **Window coarseness** — the same average bandwidth at 6× coarser
//!    windows.
//! 5. **Window vs. token bucket** — the same average rate replenished
//!    continuously instead of per-window.
//! 6. **Byte-based vs. transaction-based (QoS-400)** — the COTS
//!    outstanding/rate regulation at the same nominal transaction rate.
//!
//! Printed columns: variant, critical slowdown, critical p99 latency,
//! max per-window overshoot (bytes), best-effort GiB/s.

use fgqos_baselines::qos400::{OtRegulatorConfig, OtRegulatorGate};
use fgqos_bench::report::Report;
use fgqos_bench::scenario::{Scenario, Scheme};
use fgqos_bench::{sweep, table};
use fgqos_core::bucket::{BucketConfig, LeakyBucketRegulator};
use fgqos_core::regulator::{ChargePolicy, OvershootPolicy, RegulatorConfig, TcRegulator};
use fgqos_sim::gate::PortGate;
use fgqos_sim::interconnect::Arbitration;
use fgqos_sim::master::MasterKind;
use fgqos_sim::system::SocBuilder;
use fgqos_workloads::spec::SpecSource;

const MAX_CYCLES: u64 = u64::MAX / 2;

struct Outcome {
    slowdown: f64,
    p99: u64,
    overshoot: u64,
    be_gibs: f64,
}

fn run_variant(
    scenario: &Scenario,
    charge: ChargePolicy,
    overshoot: OvershootPolicy,
    arbitration: Arbitration,
    period: u32,
    budget: u32,
    iso: u64,
) -> Outcome {
    // Build by hand so every knob is reachable.
    let (crit_monitor, _crit_driver) = TcRegulator::monitor_only(1_000);
    let mut cfg = scenario.soc_config();
    cfg.xbar.arbitration = arbitration;
    let mut builder = SocBuilder::new(cfg).master_full(
        "critical",
        SpecSource::new(scenario.critical_spec(), scenario.seed),
        MasterKind::Cpu,
        crit_monitor,
        1,
    );
    let mut drivers = Vec::new();
    for i in 0..scenario.interferers {
        let (reg, driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: period,
            budget_bytes: budget,
            enabled: true,
            charge,
            overshoot,
            ..RegulatorConfig::default()
        });
        drivers.push(driver);
        builder = builder.gated_master(
            format!("dma{i}"),
            SpecSource::new(scenario.interferer_spec(i), scenario.seed + 100 + i as u64),
            MasterKind::Accelerator,
            reg,
        );
    }
    let mut soc = builder.build();
    let critical = soc.master_id("critical").expect("critical");
    let cycles = soc
        .run_until_done(critical, MAX_CYCLES)
        .expect("finishes")
        .get();
    let st = soc.master_stats(critical);
    let mut be_bytes = 0u64;
    for i in 0..scenario.interferers {
        let id = soc.master_id(&format!("dma{i}")).expect("dma");
        be_bytes += soc.master_stats(id).bytes_completed;
    }
    Outcome {
        slowdown: cycles as f64 / iso as f64,
        p99: st.latency.percentile(0.99),
        overshoot: drivers
            .iter()
            .map(|d| d.telemetry().max_overshoot)
            .max()
            .unwrap_or(0),
        be_gibs: be_bytes as f64 / cycles as f64 * 1e9 / (1024.0 * 1024.0 * 1024.0),
    }
}

/// Runs the standard co-run with an arbitrary gate on every interferer.
fn run_gated(
    scenario: &Scenario,
    iso: u64,
    mut gate_factory: impl FnMut() -> Box<dyn PortGate>,
) -> Outcome {
    let (crit_monitor, _crit_driver) = TcRegulator::monitor_only(1_000);
    let mut builder = SocBuilder::new(scenario.soc_config()).master_full(
        "critical",
        SpecSource::new(scenario.critical_spec(), scenario.seed),
        MasterKind::Cpu,
        crit_monitor,
        1,
    );
    for i in 0..scenario.interferers {
        builder = builder.gated_master(
            format!("dma{i}"),
            SpecSource::new(scenario.interferer_spec(i), scenario.seed + 100 + i as u64),
            MasterKind::Accelerator,
            gate_factory(),
        );
    }
    let mut soc = builder.build();
    let critical = soc.master_id("critical").expect("critical");
    let cycles = soc
        .run_until_done(critical, MAX_CYCLES)
        .expect("finishes")
        .get();
    let st = soc.master_stats(critical);
    let mut be_bytes = 0u64;
    for i in 0..scenario.interferers {
        let id = soc.master_id(&format!("dma{i}")).expect("dma");
        be_bytes += soc.master_stats(id).bytes_completed;
    }
    Outcome {
        slowdown: cycles as f64 / iso as f64,
        p99: st.latency.percentile(0.99),
        overshoot: 0,
        be_gibs: be_bytes as f64 / cycles as f64 * 1e9 / (1024.0 * 1024.0 * 1024.0),
    }
}

/// One ablation point of the parallel sweep.
#[derive(Clone, Copy)]
enum Variant {
    /// Sanity anchor; printed as a context line, not a table row.
    Unregulated,
    Tc {
        name: &'static str,
        charge: ChargePolicy,
        overshoot: OvershootPolicy,
        arb: Arbitration,
        period: u32,
        budget: u32,
    },
    LeakyBucket,
    Qos400 {
        name: &'static str,
        txn_bytes: u64,
    },
}

fn main() {
    let mut r = Report::new("exp_ablations");
    r.banner(
        "EXP-A",
        "design-choice ablations of the tightly-coupled regulator",
    );
    let scenario = Scenario {
        interferer_txn_bytes: 512,
        ..Scenario::default()
    };
    let iso = scenario.isolation_cycles();

    let tc = |name, charge, overshoot, arb| Variant::Tc {
        name,
        charge,
        overshoot,
        arb,
        period: 1_000,
        budget: 1_024,
    };
    let points = vec![
        Variant::Unregulated,
        tc(
            "baseline",
            ChargePolicy::Acceptance,
            OvershootPolicy::Conservative,
            Arbitration::RoundRobin,
        ),
        tc(
            "charge@done",
            ChargePolicy::Completion,
            OvershootPolicy::Conservative,
            Arbitration::RoundRobin,
        ),
        tc(
            "final-burst",
            ChargePolicy::Acceptance,
            OvershootPolicy::FinalBurst,
            Arbitration::RoundRobin,
        ),
        tc(
            "fixed-prio",
            ChargePolicy::Acceptance,
            OvershootPolicy::Conservative,
            Arbitration::FixedPriority,
        ),
        // Same average bandwidth, 6x coarser windows.
        Variant::Tc {
            name: "coarse-6x",
            charge: ChargePolicy::Acceptance,
            overshoot: OvershootPolicy::Conservative,
            arb: Arbitration::RoundRobin,
            period: 6_000,
            budget: 6_144,
        },
        // Token bucket at the same average rate, depth = one window
        // budget: smoother injection, no aligned-window guarantee.
        Variant::LeakyBucket,
        // QoS-400-style regulation at the same *nominal* transaction
        // rate (2 x 512 B txns per us): byte-blind, so its enforcement
        // quality depends entirely on the burst size staying what the
        // integrator assumed.
        Variant::Qos400 {
            name: "qos400-ot",
            txn_bytes: 512,
        },
        // The byte-blindness: the *same* QoS-400 configuration, but the
        // accelerators switch to 4 KiB bursts. The transaction-rate cap
        // still admits 2 txns/us -- now 8x the bytes. The byte-based
        // regulator's enforcement would be unchanged.
        Variant::Qos400 {
            name: "qos400-4k-burst",
            txn_bytes: 4_096,
        },
    ];

    let results = sweep::run_parallel(points, |variant| match variant {
        Variant::Unregulated => {
            let (unreg_cycles, _) = scenario.run(Scheme::Unregulated, MAX_CYCLES);
            (
                "unregulated",
                Outcome {
                    slowdown: unreg_cycles as f64 / iso as f64,
                    p99: 0,
                    overshoot: 0,
                    be_gibs: 0.0,
                },
            )
        }
        Variant::Tc {
            name,
            charge,
            overshoot,
            arb,
            period,
            budget,
        } => (
            name,
            run_variant(&scenario, charge, overshoot, arb, period, budget, iso),
        ),
        Variant::LeakyBucket => (
            "leaky-bucket",
            run_gated(&scenario, iso, || {
                Box::new(LeakyBucketRegulator::new(BucketConfig {
                    budget_bytes: 1_024,
                    period_cycles: 1_000,
                    depth_bytes: 1_024,
                    ..BucketConfig::default()
                }))
            }),
        ),
        Variant::Qos400 { name, txn_bytes } => {
            let s = Scenario {
                interferer_txn_bytes: txn_bytes,
                ..scenario.clone()
            };
            (
                name,
                run_gated(&s, iso, || {
                    Box::new(OtRegulatorGate::new(OtRegulatorConfig {
                        max_outstanding: 2,
                        txns_per_period: 2,
                        period_cycles: 1_000,
                    }))
                }),
            )
        }
    });

    r.context("isolation_cycles", iso);
    r.context(
        "unregulated slowdown",
        format!("{:.2}", results[0].1.slowdown),
    );
    r.header(&["variant", "slowdown", "p99_lat", "overshoot_B", "be_gibs"]);
    for (name, o) in &results[1..] {
        r.row(vec![
            (*name).into(),
            table::f2(o.slowdown),
            table::int(o.p99),
            table::int(o.overshoot),
            table::f2(o.be_gibs),
        ]);
    }
    r.emit();
}
