//! EXP-F5 — Dynamic adaptation timeline.
//!
//! Two closed-loop re-budgeting policies are exercised against
//! phase-changing workloads, and the commanded best-effort budget is
//! sampled over time together with the per-window progress of the
//! critical actor and one best-effort port:
//!
//! * **Section A (reclaim)** — the critical actor alternates 300 µs
//!   active / 300 µs compute-only phases; the CMRI-style reclaim policy
//!   lends the critical reservation to the best-effort ports during idle
//!   phases and clamps back within one 10 µs control period of critical
//!   activity.
//! * **Section B (feedback)** — the critical actor is steady while the
//!   interference switches on and off in 500 µs phases; the AIMD
//!   feedback controller collapses the best-effort budget within a few
//!   control periods of the critical throughput dropping below target,
//!   and grows it back additively while the target is met.
//!
//! Printed columns: time (µs), critical bytes in the window, dma0 bytes
//! in the window, commanded best-effort budget (bytes/window).

use fgqos_bench::report::Report;
use fgqos_bench::{sweep, table};
use fgqos_core::driver::RegulatorDriver;
use fgqos_core::policy::{FeedbackController, ReclaimConfig, ReclaimPolicy};
use fgqos_core::regulator::{RegulatorConfig, TcRegulator};
use fgqos_sim::master::MasterKind;
use fgqos_sim::system::{Controller, SocBuilder, SocConfig};
use fgqos_sim::time::Cycle;
use fgqos_workloads::spec::{BurstShape, SpecSource, TrafficSpec};
use std::cell::RefCell;
use std::rc::Rc;

const SAMPLE: u64 = 50_000; // 50 us timeline buckets
const HORIZON: u64 = 3_000_000; // 3 ms

/// Samples a driver's programmed budget every [`SAMPLE`] cycles.
struct BudgetSampler {
    driver: RegulatorDriver,
    samples: Rc<RefCell<Vec<u32>>>,
    next_at: u64,
}

impl Controller for BudgetSampler {
    fn on_cycle(&mut self, now: Cycle) {
        if now.get() < self.next_at {
            return;
        }
        self.next_at = now.get() + SAMPLE;
        self.samples.borrow_mut().push(self.driver.budget_bytes());
    }

    fn label(&self) -> &'static str {
        "budget-sampler"
    }
}

fn timeline_rows(crit: &[u64], be: &[u64], budgets: &[u32]) -> Vec<Vec<String>> {
    let n = crit.len().min(be.len()).min(budgets.len());
    (0..n)
        .map(|i| {
            vec![
                table::int(i as u64 * SAMPLE / 1_000),
                table::int(crit[i]),
                table::int(be[i]),
                table::int(budgets[i] as u64),
            ]
        })
        .collect()
}

fn push_section(r: &mut Report, banner: (&str, &str), rows: Vec<Vec<String>>) {
    r.blank();
    r.banner(banner.0, banner.1);
    r.header(&["t_us", "crit_B", "dma0_B", "budget_B"]);
    for row in rows {
        r.row(row);
    }
}

fn section_a_reclaim() -> Vec<Vec<String>> {
    let critical = TrafficSpec::latency_sensitive(0, 4 << 20, 256, 1_000).with_burst(BurstShape {
        on_cycles: 300_000,
        off_cycles: 300_000,
    });
    let (crit_monitor, crit_driver) = TcRegulator::monitor_only(1_000);
    let mut regs = Vec::new();
    let mut drivers = Vec::new();
    for _ in 0..3 {
        let (reg, driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 1_024,
            enabled: true,
            ..RegulatorConfig::default()
        });
        regs.push(reg);
        drivers.push(driver);
    }
    let policy = ReclaimPolicy::new(
        crit_driver.clone(),
        drivers.clone(),
        ReclaimConfig {
            critical_reserved: 2_500,
            be_base: 10 * 1_024,
            control_period: 10_000,
            gain: 25,
            busy_threshold: Some(256),
        },
    );
    let samples = Rc::new(RefCell::new(Vec::new()));
    let sampler = BudgetSampler {
        driver: drivers[0].clone(),
        samples: Rc::clone(&samples),
        next_at: 0,
    };
    let mut builder = SocBuilder::new(SocConfig::default())
        .master_full(
            "critical",
            SpecSource::new(critical, 1),
            MasterKind::Cpu,
            crit_monitor,
            1,
        )
        .controller(policy)
        .controller(sampler)
        .record_windows(SAMPLE);
    for (i, reg) in regs.into_iter().enumerate() {
        let spec = TrafficSpec::stream(
            (1 + i as u64) << 28,
            16 << 20,
            512,
            fgqos_sim::axi::Dir::Write,
        );
        builder = builder.gated_master(
            format!("dma{i}"),
            SpecSource::new(spec, 100 + i as u64),
            MasterKind::Accelerator,
            reg,
        );
    }
    let mut soc = builder.build();
    soc.run(HORIZON);
    let crit_id = soc.master_id("critical").expect("critical");
    let be_id = soc.master_id("dma0").expect("dma0");
    let crit_w = soc
        .master_stats(crit_id)
        .window
        .as_ref()
        .expect("windows")
        .windows()
        .to_vec();
    let be_w = soc
        .master_stats(be_id)
        .window
        .as_ref()
        .expect("windows")
        .windows()
        .to_vec();
    let rows = timeline_rows(&crit_w, &be_w, &samples.borrow());
    rows
}

fn section_b_feedback() -> Vec<Vec<String>> {
    let critical = TrafficSpec::latency_sensitive(0, 4 << 20, 256, 500);
    let (crit_monitor, crit_driver) = TcRegulator::monitor_only(1_000);
    let mut regs = Vec::new();
    let mut drivers = Vec::new();
    for _ in 0..3 {
        let (reg, driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 8_192,
            enabled: true,
            ..RegulatorConfig::default()
        });
        regs.push(reg);
        drivers.push(driver);
    }
    // Isolation rate: one 256 B read per ~580 cycles => ~4.4 kB / 10 us.
    // Target: hold >= 90 % of that.
    let policy = FeedbackController::new(
        crit_driver.clone(),
        4_000,
        drivers.clone(),
        8_192,
        256,
        8_192,
        512,
        10_000,
    );
    let samples = Rc::new(RefCell::new(Vec::new()));
    let sampler = BudgetSampler {
        driver: drivers[0].clone(),
        samples: Rc::clone(&samples),
        next_at: 0,
    };
    let mut builder = SocBuilder::new(SocConfig::default())
        .master_full(
            "critical",
            SpecSource::new(critical, 1),
            MasterKind::Cpu,
            crit_monitor,
            1,
        )
        .controller(policy)
        .controller(sampler)
        .record_windows(SAMPLE);
    for (i, reg) in regs.into_iter().enumerate() {
        // Interference switches on/off in 500 us phases.
        let spec = TrafficSpec::stream(
            (1 + i as u64) << 28,
            16 << 20,
            512,
            fgqos_sim::axi::Dir::Write,
        )
        .with_burst(BurstShape {
            on_cycles: 500_000,
            off_cycles: 500_000,
        });
        builder = builder.gated_master(
            format!("dma{i}"),
            SpecSource::new(spec, 100 + i as u64),
            MasterKind::Accelerator,
            reg,
        );
    }
    let mut soc = builder.build();
    soc.run(HORIZON);
    let crit_id = soc.master_id("critical").expect("critical");
    let be_id = soc.master_id("dma0").expect("dma0");
    let crit_w = soc
        .master_stats(crit_id)
        .window
        .as_ref()
        .expect("windows")
        .windows()
        .to_vec();
    let be_w = soc
        .master_stats(be_id)
        .window
        .as_ref()
        .expect("windows")
        .windows()
        .to_vec();
    let rows = timeline_rows(&crit_w, &be_w, &samples.borrow());
    rows
}

fn main() {
    let mut r = Report::new("exp_adaptive");
    r.banner("EXP-F5", "dynamic adaptation timelines (two policies)");
    // Both timelines simulate independently; rows come back in order.
    let mut sections = sweep::run_parallel(vec![0u8, 1], |which| match which {
        0 => section_a_reclaim(),
        _ => section_b_feedback(),
    });
    let section_b = sections.pop().expect("two sections");
    let section_a = sections.pop().expect("two sections");
    push_section(
        &mut r,
        (
            "EXP-F5a",
            "reclaim timeline: bursty critical, greedy best-effort",
        ),
        section_a,
    );
    push_section(
        &mut r,
        (
            "EXP-F5b",
            "AIMD feedback timeline: steady critical, bursty interference",
        ),
        section_b,
    );
    r.emit();
}
