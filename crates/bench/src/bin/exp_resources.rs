//! EXP-T1 — FPGA resource usage of the regulator IP.
//!
//! Analytic post-synthesis-style estimate of the monitoring/regulation
//! IP on the Xilinx ZU9EG (ZCU102), for 1–8 regulated ports and three
//! telemetry counter widths. The headline matches the paper's resource
//! table: a fraction of a percent of the device per port, scaling
//! linearly, with no BRAM unless the optional telemetry history buffer
//! is enabled.
//!
//! Printed columns: ports, counter width, LUTs, FFs, BRAM36, and device
//! utilization percentages.

use fgqos_bench::report::Report;
use fgqos_bench::{sweep, table};
use fgqos_core::cost::{ResourceModel, Zu9egBudget};

fn main() {
    let mut r = Report::new("exp_resources");
    r.banner("EXP-T1", "regulator IP resource usage on the ZU9EG");
    r.context(
        "device",
        format!(
            "{} LUT / {} FF / {} BRAM36",
            Zu9egBudget::LUTS,
            Zu9egBudget::FFS,
            Zu9egBudget::BRAM36
        ),
    );
    r.header(&[
        "ports",
        "cnt_width",
        "luts",
        "ffs",
        "bram36",
        "lut_pct",
        "ff_pct",
    ]);
    let points: Vec<(u32, usize)> = [32u32, 48, 64]
        .into_iter()
        .flat_map(|width| {
            [1usize, 2, 4, 8]
                .into_iter()
                .map(move |ports| (width, ports))
        })
        .collect();
    let rows = sweep::run_parallel(points, |(width, ports)| {
        let model = ResourceModel {
            counter_width: width,
            ..ResourceModel::default()
        };
        let est = model.for_ports(ports);
        let (lut_pct, ff_pct, _) = Zu9egBudget::utilization(est);
        vec![
            table::int(ports as u64),
            table::int(width as u64),
            table::int(est.luts),
            table::int(est.ffs),
            table::int(est.bram36),
            table::f3(lut_pct),
            table::f3(ff_pct),
        ]
    });
    for row in rows {
        r.row(row);
    }

    r.blank();
    r.banner("EXP-T1b", "optional 4096-entry telemetry history buffer");
    let hist = ResourceModel {
        history_depth: 4096,
        ..ResourceModel::default()
    };
    let est = hist.for_ports(4);
    let (lut_pct, ff_pct, bram_pct) = Zu9egBudget::utilization(est);
    r.header(&[
        "ports", "luts", "ffs", "bram36", "lut_pct", "ff_pct", "bram_pct",
    ]);
    r.row(vec![
        table::int(4),
        table::int(est.luts),
        table::int(est.ffs),
        table::int(est.bram36),
        table::f3(lut_pct),
        table::f3(ff_pct),
        table::f3(bram_pct),
    ]);
    r.emit();
}
