//! EXP-F4 — QoS vs. utilization under a 10 % slowdown bound.
//!
//! The real question a QoS mechanism answers: *with the critical actor
//! guaranteed at most 10 % slowdown, how much memory bandwidth can the
//! best-effort accelerators still use?* (Companion shape, DATE 2022:
//! PREM-style mutual exclusion wastes the accelerator bandwidth during
//! critical phases; CMRI-style regulated injection recovers >40 % of it
//! while staying below 10 % slowdown.)
//!
//! The critical workload alternates 500 µs active and 500 µs compute-only
//! phases (compute-dominated while active, as a task with a 10 % bound
//! necessarily is). Schemes:
//!
//! * `unregulated` — reference best-effort throughput, bound violated;
//! * `prem-phase`  — interferers silenced for the critical actor's whole
//!   active phase (mutual exclusion), free during the idle phase;
//! * `memguard`    — per-tick software budgets, largest grid point that
//!   meets the bound;
//! * `tc-regulator` — static tightly-coupled budgets, largest grid point
//!   meeting the bound;
//! * `tc+reclaim`  — tightly-coupled budgets plus CMRI-style reclaim of
//!   the critical reservation during its idle phases.
//!
//! Printed columns: scheme, critical slowdown achieved, best-effort
//! aggregate GiB/s, fraction of the unregulated best-effort throughput
//! retained, bound verdict.
//!
//! With `--warm-start` the grid runs on
//! [`fgqos_bench::sweep::run_warm_groups`]: each point's fresh build is
//! captured as a cycle-0 [`SocSnapshot`] and measured on a fork (see
//! [`Boundary`] for why the groups are singletons). The output must be
//! byte-identical to the cold path; CI diffs the committed artifact.

use fgqos_bench::report::Report;
use fgqos_bench::scenario::{Built, Scenario, Scheme};
use fgqos_bench::{sweep, table};
use fgqos_core::policy::ReclaimConfig;
use fgqos_sim::axi::MasterId;
use fgqos_sim::snapshot::SocSnapshot;
use fgqos_sim::system::Soc;
use fgqos_sim::ForkCtx;
use fgqos_workloads::spec::BurstShape;

const BOUND: f64 = 1.10;
const MAX_CYCLES: u64 = u64::MAX / 2;

/// One grid point of the scheme sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Point {
    Unregulated,
    PremPhase { phase: u64 },
    MemGuard { bpk: u64 },
    Tc { budget: u32, reclaim: bool },
}

/// Aggregate best-effort bytes per cycle achieved in a run.
fn best_effort_rate(soc: &Soc, cycles: u64, n: usize) -> f64 {
    let mut bytes = 0u64;
    for i in 0..n {
        let id = soc.master_id(&format!("dma{i}")).expect("interferer");
        bytes += soc.master_stats(id).bytes_completed;
    }
    bytes as f64 / cycles as f64
}

fn gib_per_s(rate_bytes_per_cycle: f64) -> f64 {
    rate_bytes_per_cycle * 1e9 / (1024.0 * 1024.0 * 1024.0)
}

/// Builds the co-run system for one grid point.
fn build_point(scenario: &Scenario, point: Point) -> Built {
    match point {
        Point::Unregulated => scenario.build(Scheme::Unregulated),
        Point::PremPhase { phase } => {
            // PREM-style mutual exclusion aligned to the critical phases.
            scenario.build(Scheme::PremPhase {
                phase,
                guard: 2_500,
            })
        }
        Point::MemGuard { bpk } => {
            let tick = 1_000_000u64;
            scenario.build(Scheme::MemGuard {
                tick,
                budget: bpk * tick / 1_000,
                irq: 2_000,
            })
        }
        Point::Tc {
            budget,
            reclaim: false,
        } => scenario.build(Scheme::Tc {
            period: 1_000,
            budget,
        }),
        Point::Tc {
            budget,
            reclaim: true,
        } => {
            // Lend the critical actor's protection headroom to the
            // best-effort ports while its phase is idle. The reserve
            // matches the active-phase demand (~0.25 B/cycle); the
            // gain expresses that protecting the critical actor
            // costs far more bandwidth than it consumes. Any sign of
            // critical activity clamps straight back to base.
            scenario.build_with_reclaim(
                1_000,
                budget,
                ReclaimConfig {
                    critical_reserved: 2_500,
                    control_period: 10_000,
                    gain: 25,
                    busy_threshold: Some(256),
                    ..ReclaimConfig::default()
                },
            )
        }
    }
}

/// Runs one built (or forked) point to critical completion and reduces
/// to (slowdown, best-effort rate). Shared by the cold and warm paths.
fn run_point(mut soc: Soc, critical: MasterId, iso: u64, n: usize) -> (f64, f64) {
    let cycles = soc
        .run_until_done(critical, MAX_CYCLES)
        .expect("critical finishes")
        .get();
    (
        cycles as f64 / iso as f64,
        best_effort_rate(&soc, cycles, n),
    )
}

/// One grid point's cycle-0 boundary: the freshly built scheme captured
/// as a forkable snapshot. Budgets, TDMA phases and the reclaim policy
/// all act from cycle 0, so points share no simulated prefix (groups
/// are singletons); the warm path instead proves fork-vs-build
/// equivalence on every scheme family the experiment touches.
struct Boundary {
    snap: SocSnapshot,
    critical: MasterId,
}

impl Boundary {
    fn capture(scenario: &Scenario, point: Point) -> Boundary {
        let built = build_point(scenario, point);
        let critical = built.critical;
        Boundary {
            snap: built
                .soc
                .snapshot()
                .expect("fresh utilization soc is forkable"),
            critical,
        }
    }

    fn eval(&self, iso: u64, n: usize) -> (f64, f64) {
        let mut ctx = ForkCtx::new();
        run_point(self.snap.fork_with(&mut ctx), self.critical, iso, n)
    }
}

fn push_scheme(r: &mut Report, name: &str, slowdown: f64, rate: f64, unreg_rate: f64) {
    r.row(vec![
        name.into(),
        table::f2(slowdown),
        table::f2(gib_per_s(rate)),
        table::f2(rate / unreg_rate),
        if slowdown <= BOUND { "yes" } else { "no" }.into(),
    ]);
}

fn main() {
    let warm_start = std::env::args().any(|a| a == "--warm-start");

    let mut r = Report::new("exp_utilization");
    r.banner(
        "EXP-F4",
        "best-effort utilization under a 10% critical slowdown bound",
    );
    // Bursty critical workload: active/compute phases of 500 us each; the
    // critical task is compute-dominated while active (think 1000 cycles
    // per 256 B access, ~8 % memory time), as a task with a 10 % QoS
    // bound necessarily is.
    let phase = 500_000u64;
    let scenario = Scenario {
        critical_burst: Some(BurstShape {
            on_cycles: phase,
            off_cycles: phase,
        }),
        critical_txns: 3_000,
        critical_think: 1_000,
        interferer_txn_bytes: 512,
        ..Scenario::default()
    };
    let n = scenario.interferers;
    let iso = scenario.isolation_cycles();
    r.context("interferers", n);
    r.context(
        "critical",
        "500 us active / 500 us compute phases, think 1000",
    );
    r.context("bound", "critical slowdown <= 1.10");

    // The whole scheme/budget grid runs as one parallel sweep; each point
    // reduces to (slowdown, best-effort rate) and the grid searches below
    // stay serial over the order-stable results.
    let mg_grid: &[u64] = &[10, 25, 50, 100, 250, 500, 1_000, 2_000];
    let tc_grid: &[u32] = &[512, 1_024, 1_536, 2_048, 2_560, 3_072, 4_096];
    let mut points = vec![Point::Unregulated, Point::PremPhase { phase }];
    points.extend(mg_grid.iter().map(|&bpk| Point::MemGuard { bpk }));
    for reclaim in [false, true] {
        points.extend(tc_grid.iter().map(|&budget| Point::Tc { budget, reclaim }));
    }

    let results = if warm_start {
        // Singleton groups (see [`Boundary`]): snapshot every fresh
        // build at cycle 0, run the measurement on a fork. Output must
        // match the cold path byte for byte (CI diffs the artifact).
        sweep::run_warm_groups(
            points,
            |&point| point,
            |&point| Boundary::capture(&scenario, point),
            |boundary, _point| boundary.eval(iso, n),
        )
    } else {
        sweep::run_parallel(points, |point| {
            let built = build_point(&scenario, point);
            run_point(built.soc, built.critical, iso, n)
        })
    };

    let (unreg_slowdown, unreg_rate) = results[0];
    let (prem_slowdown, prem_rate) = results[1];
    r.header(&[
        "scheme",
        "slowdown",
        "be_gibs",
        "be_retained",
        "meets_bound",
    ]);
    push_scheme(
        &mut r,
        "unregulated",
        unreg_slowdown,
        unreg_rate,
        unreg_rate,
    );
    push_scheme(&mut r, "prem-phase", prem_slowdown, prem_rate, unreg_rate);

    // MemGuard and tightly-coupled: largest grid point meeting the bound.
    let mut cursor = results[2..].iter().copied();
    let mg: Vec<(f64, f64)> = cursor.by_ref().take(mg_grid.len()).collect();
    let select = |outcomes: &[(f64, f64)]| -> Option<(f64, f64)> {
        let mut best: Option<(f64, f64)> = None;
        for &(slowdown, rate) in outcomes {
            if slowdown <= BOUND && best.is_none_or(|(_, r)| rate > r) {
                best = Some((slowdown, rate));
            }
        }
        best
    };
    match select(&mg) {
        Some((sd, rate)) => push_scheme(&mut r, "memguard", sd, rate, unreg_rate),
        None => r.row(vec![
            "memguard".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "no".into(),
        ]),
    }
    for name in ["tc-regulator", "tc+reclaim"] {
        let outcomes: Vec<(f64, f64)> = cursor.by_ref().take(tc_grid.len()).collect();
        match select(&outcomes) {
            Some((sd, rate)) => push_scheme(&mut r, name, sd, rate, unreg_rate),
            None => r.row(vec![
                name.into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "no".into(),
            ]),
        }
    }
    r.emit();
}
