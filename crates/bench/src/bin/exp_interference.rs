//! EXP-F1 — Motivation: memory interference on an FPGA HeSoC.
//!
//! Reproduces the paper's motivation figure (companion shape: up to ~16×
//! CPU-task slowdown on Xilinx FPGA SoCs, DATE 2022): slowdown of a
//! latency-sensitive critical actor as the number of unregulated
//! interfering PL masters grows, for read- and write-dominated
//! interference.
//!
//! Printed columns: interferer count, interference direction, critical
//! completion cycles, slowdown vs. isolation, critical p50/p99 latency
//! (cycles), aggregate DRAM bandwidth (GiB/s).

use fgqos_bench::report::Report;
use fgqos_bench::scenario::{Scenario, Scheme};
use fgqos_bench::{sweep, table};
use fgqos_sim::axi::Dir;

fn main() {
    let mut r = Report::new("exp_interference");
    r.banner(
        "EXP-F1",
        "critical slowdown vs. number of unregulated interferers",
    );
    let base = Scenario::default();
    r.context(
        "critical",
        "256 B random closed-loop reads, think 100 cycles",
    );
    r.context("interferer", "greedy 1 KiB sequential streams");
    r.header(&[
        "interferers",
        "dir",
        "cycles",
        "slowdown",
        "p50_lat",
        "p99_lat",
        "dram_gibs",
    ]);

    // Isolation has no interferers, so the baseline is direction-free.
    let iso = base.isolation_cycles();
    let points: Vec<(Dir, usize)> = [Dir::Read, Dir::Write]
        .into_iter()
        .flat_map(|dir| (0..=7usize).map(move |n| (dir, n)))
        .collect();
    let rows = sweep::run_parallel(points, |(dir, n)| {
        let s = Scenario {
            interferers: n,
            interferer_dir: dir,
            ..base.clone()
        };
        let (cycles, built) = s.run(Scheme::Unregulated, u64::MAX / 2);
        let st = built.soc.master_stats(built.critical);
        let dram_bw = built.soc.total_bandwidth();
        vec![
            table::int(n as u64),
            dir.to_string(),
            table::int(cycles),
            table::f2(cycles as f64 / iso as f64),
            table::int(st.latency.percentile(0.50)),
            table::int(st.latency.percentile(0.99)),
            table::f2(dram_bw.gib_per_s()),
        ]
    });
    for row in rows {
        r.row(row);
    }
    r.emit();
}
