//! Parallel sweep runner for the experiment grids.
//!
//! Every `exp_*` binary evaluates a grid of independent simulation
//! points: each point builds its own [`Soc`](fgqos_sim::system::Soc)
//! from plain parameters, runs it to completion and reduces it to a
//! result row. The points share nothing, so they parallelize trivially —
//! but a `Soc` is `!Send` (driver handles are `Rc`-based), so the
//! *parameters* cross threads and each worker builds its simulator
//! locally.
//!
//! [`run_parallel`] is the whole API: a scoped worker pool over a shared
//! work queue. Results are collected into the **input order** regardless
//! of which worker finishes when, so table output stays byte-identical
//! to a serial run and diffable across machines. Worker count defaults
//! to the machine's parallelism and can be pinned with the
//! `FGQOS_SWEEP_THREADS` environment variable (`1` forces a serial run
//! in the calling thread).

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::Mutex;

/// Number of workers used for a sweep of `points` points: the smaller of
/// the available hardware parallelism and the point count, overridable
/// via `FGQOS_SWEEP_THREADS`.
pub fn worker_count(points: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let configured = std::env::var("FGQOS_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw);
    configured.min(points.max(1))
}

/// Evaluates `f` over every point of the grid on a scoped worker pool
/// and returns the results **in input order**.
///
/// `f` must be a pure function of its point (build the simulator inside
/// the closure); it may be called from any worker thread. A panic in any
/// point propagates to the caller after the pool unwinds.
///
/// ```
/// let squares = fgqos_bench::sweep::run_parallel(vec![1u64, 2, 3, 4], |p| p * p);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn run_parallel<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let n = points.len();
    if worker_count(n) <= 1 || n <= 1 {
        return points.into_iter().map(f).collect();
    }
    let workers = worker_count(n);
    let queue: Mutex<VecDeque<(usize, P)>> = Mutex::new(points.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Pop under the lock, compute outside it.
                let item = queue.lock().expect("sweep queue poisoned").pop_front();
                let Some((idx, point)) = item else { break };
                let result = f(point);
                *slots[idx].lock().expect("sweep slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every queued point produces a result")
        })
        .collect()
}

/// Warm-start planner: groups grid points by a shared-prefix key, runs
/// each group's prefix **once**, and evaluates every point of the group
/// against that prefix state.
///
/// This is how sweeps exploit [`SocSnapshot`]: `prefix` typically
/// builds the scenario, runs the shared warm-up phase to a quiesced
/// boundary and captures it (snapshot plus whatever driver handles the
/// caller holds); `eval` forks the snapshot per point, applies the
/// point's knob and runs the divergent tail. The prefix state `S` is
/// deliberately **not** required to be `Send` — a `Soc` and its
/// snapshots are `Rc`-based, so a group's prefix and all of its forks
/// stay on the worker thread that built them. Whole groups are
/// distributed over the [`run_parallel`] worker pool; results return
/// in input order, so the output stays byte-identical to a cold serial
/// run of the same schedule.
///
/// [`SocSnapshot`]: fgqos_sim::snapshot::SocSnapshot
///
/// ```
/// // Two groups (odd/even): each prefix is built once and shared.
/// let out = fgqos_bench::sweep::run_warm_groups(
///     vec![1u64, 2, 3, 4],
///     |p| p % 2,
///     |key| key * 100,          // expensive shared prefix
///     |prefix, p| prefix + p,   // cheap per-point tail
/// );
/// assert_eq!(out, vec![101, 2 + 0, 103, 4 + 0]);
/// ```
pub fn run_warm_groups<P, K, S, R, FK, FP, FE>(
    points: Vec<P>,
    key: FK,
    prefix: FP,
    eval: FE,
) -> Vec<R>
where
    P: Send,
    K: Eq + Hash + Clone + Send,
    R: Send,
    FK: Fn(&P) -> K + Sync,
    FP: Fn(&K) -> S + Sync,
    FE: Fn(&S, P) -> R + Sync,
{
    // Group points by key, preserving the input order of groups (first
    // appearance) and of points within each group.
    let n = points.len();
    let mut index: HashMap<K, usize> = HashMap::new();
    let mut grouped: Vec<(K, Vec<(usize, P)>)> = Vec::new();
    for (i, p) in points.into_iter().enumerate() {
        let k = key(&p);
        match index.get(&k) {
            Some(&g) => grouped[g].1.push((i, p)),
            None => {
                index.insert(k.clone(), grouped.len());
                grouped.push((k, vec![(i, p)]));
            }
        }
    }
    let per_group: Vec<Vec<(usize, R)>> = run_parallel(grouped, |(k, items)| {
        let state = prefix(&k);
        items
            .into_iter()
            .map(|(i, p)| (i, eval(&state, p)))
            .collect()
    });
    // Scatter back into input order.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in per_group.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every grouped point produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        // Later points finish first (earlier ones sleep longer): the
        // result vector must still follow the input order.
        let points: Vec<u64> = (0..32).collect();
        let out = run_parallel(points.clone(), |p| {
            std::thread::sleep(std::time::Duration::from_micros((32 - p) * 50));
            p * 10
        });
        assert_eq!(out, points.iter().map(|p| p * 10).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_point_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_parallel((0..100usize).collect(), |p| {
            calls.fetch_add(1, Ordering::SeqCst);
            p
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn empty_and_single_point_grids() {
        let empty: Vec<u32> = run_parallel(Vec::<u32>::new(), |p| p);
        assert!(empty.is_empty());
        assert_eq!(run_parallel(vec![7u32], |p| p + 1), vec![8]);
    }

    #[test]
    fn closure_may_borrow_environment() {
        let offset = 100u64;
        let out = run_parallel(vec![1u64, 2, 3], |p| p + offset);
        assert_eq!(out, vec![101, 102, 103]);
    }

    #[test]
    fn worker_count_is_bounded_by_points() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000) >= 1);
    }

    #[test]
    fn warm_groups_run_each_prefix_once() {
        let prefixes = AtomicUsize::new(0);
        let out = run_warm_groups(
            (0..30u64).collect(),
            |p| p % 3,
            |k| {
                prefixes.fetch_add(1, Ordering::SeqCst);
                k * 1_000
            },
            |prefix, p| prefix + p,
        );
        assert_eq!(prefixes.load(Ordering::SeqCst), 3, "one prefix per group");
        assert_eq!(
            out,
            (0..30u64).map(|p| (p % 3) * 1_000 + p).collect::<Vec<_>>()
        );
    }

    #[test]
    fn warm_groups_preserve_input_order_across_groups() {
        let points = vec![5u64, 2, 9, 2, 5, 7];
        let out = run_warm_groups(points.clone(), |&p| p, |&k| k * 10, |pre, p| pre + p);
        assert_eq!(out, points.iter().map(|p| p * 10 + p).collect::<Vec<_>>());
    }

    #[test]
    fn warm_groups_prefix_state_need_not_be_send() {
        // Rc is !Send: the planner must keep each group's state on one
        // worker thread.
        use std::rc::Rc;
        let out = run_warm_groups(
            vec![1u64, 2, 3],
            |_| 0u8,
            |_| Rc::new(100u64),
            |pre, p| **pre + p,
        );
        assert_eq!(out, vec![101, 102, 103]);
    }

    #[test]
    fn warm_groups_empty_grid() {
        let out: Vec<u64> = run_warm_groups(Vec::<u64>::new(), |&p| p, |&k| k, |_, p| p);
        assert!(out.is_empty());
    }
}
