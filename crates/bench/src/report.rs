//! Structured experiment reports: the machine-readable twin of the
//! stdout tables.
//!
//! Every `exp_*` binary builds a [`Report`] instead of printing directly.
//! [`Report::emit`] then (a) prints the table to stdout in exactly the
//! byte layout the legacy [`crate::table`] helpers produced, and (b)
//! writes a schema-versioned JSON artifact to `results/<exp>.json`
//! (override the directory with `FGQOS_RESULTS_DIR`). The artifact is the
//! source of truth for the experiment book: the `render_book` binary
//! regenerates `results/<exp>.txt` and the measured sections of
//! `EXPERIMENTS.md` from it byte-identically (CI checks for drift).

use crate::table;
use fgqos_sim::json::Value;
use std::path::PathBuf;

/// Schema identifier written into every report artifact.
pub const REPORT_SCHEMA: &str = "fgqos.exp-report";
/// Schema version written into every report artifact.
pub const REPORT_VERSION: u64 = 1;

/// One output block of a report, in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Block {
    /// The `# {id}: {title}` experiment banner.
    Banner {
        /// Experiment id (e.g. `EXP-F1`).
        id: String,
        /// Human-readable title.
        title: String,
    },
    /// A `#   {key} = {value}` run-parameter line.
    Context {
        /// Parameter name.
        key: String,
        /// Formatted parameter value.
        value: String,
    },
    /// A free-form `#   {text}` comment line (summaries, verdicts).
    Note(String),
    /// A fixed-width column header row.
    Header(Vec<String>),
    /// A fixed-width data row (cells unpadded; layout applied at render).
    Row(Vec<String>),
    /// An empty separator line (multi-section reports).
    Blank,
}

/// A structured experiment report (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    exp: String,
    blocks: Vec<Block>,
}

impl Report {
    /// Starts an empty report for the experiment binary named `exp`
    /// (artifact file stem, e.g. `exp_interference`).
    pub fn new(exp: impl Into<String>) -> Self {
        Report {
            exp: exp.into(),
            blocks: Vec::new(),
        }
    }

    /// The experiment name this report belongs to.
    pub fn exp(&self) -> &str {
        &self.exp
    }

    /// The blocks in document order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Appends the experiment banner.
    pub fn banner(&mut self, id: &str, title: &str) {
        self.blocks.push(Block::Banner {
            id: id.to_string(),
            title: title.to_string(),
        });
    }

    /// Appends a run-parameter context line.
    pub fn context(&mut self, key: &str, value: impl std::fmt::Display) {
        self.blocks.push(Block::Context {
            key: key.to_string(),
            value: value.to_string(),
        });
    }

    /// Appends a free-form comment line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.blocks.push(Block::Note(text.into()));
    }

    /// Appends a column header row.
    pub fn header(&mut self, cols: &[&str]) {
        self.blocks
            .push(Block::Header(cols.iter().map(|c| c.to_string()).collect()));
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.blocks.push(Block::Row(cells));
    }

    /// Appends an empty separator line.
    pub fn blank(&mut self) {
        self.blocks.push(Block::Blank);
    }

    /// Renders the report exactly as the legacy stdout tables looked:
    /// one line per block, right-aligned 14-character columns.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for b in &self.blocks {
            match b {
                Block::Banner { id, title } => out.push_str(&format!("# {id}: {title}")),
                Block::Context { key, value } => out.push_str(&format!("#   {key} = {value}")),
                Block::Note(text) => out.push_str(&format!("#   {text}")),
                Block::Header(cells) => {
                    let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
                    out.push_str(&table::format_header(&refs));
                }
                Block::Row(cells) => out.push_str(&table::format_row(cells)),
                Block::Blank => {}
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the report as a schema-versioned JSON document.
    pub fn to_json(&self) -> Value {
        let mut blocks = Value::arr();
        for b in &self.blocks {
            let mut o = Value::obj();
            match b {
                Block::Banner { id, title } => {
                    o.set("kind", Value::str("banner"));
                    o.set("id", Value::str(id.clone()));
                    o.set("title", Value::str(title.clone()));
                }
                Block::Context { key, value } => {
                    o.set("kind", Value::str("context"));
                    o.set("key", Value::str(key.clone()));
                    o.set("value", Value::str(value.clone()));
                }
                Block::Note(text) => {
                    o.set("kind", Value::str("note"));
                    o.set("text", Value::str(text.clone()));
                }
                Block::Header(cells) => {
                    o.set("kind", Value::str("header"));
                    o.set("cells", str_arr(cells));
                }
                Block::Row(cells) => {
                    o.set("kind", Value::str("row"));
                    o.set("cells", str_arr(cells));
                }
                Block::Blank => {
                    o.set("kind", Value::str("blank"));
                }
            }
            blocks.push(o);
        }
        let mut doc = Value::obj();
        doc.set("schema", Value::str(REPORT_SCHEMA));
        doc.set("version", Value::from(REPORT_VERSION));
        doc.set("exp", Value::str(self.exp.clone()));
        doc.set("blocks", blocks);
        doc
    }

    /// Deserializes a report from its JSON artifact.
    pub fn from_json(doc: &Value) -> Result<Report, String> {
        if doc.get("schema").and_then(Value::as_str) != Some(REPORT_SCHEMA) {
            return Err(format!("not a {REPORT_SCHEMA} document"));
        }
        if doc.get("version").and_then(Value::as_u64) != Some(REPORT_VERSION) {
            return Err(format!("unsupported {REPORT_SCHEMA} version"));
        }
        let exp = doc
            .get("exp")
            .and_then(Value::as_str)
            .ok_or("missing exp")?
            .to_string();
        let mut report = Report::new(exp);
        let blocks = doc
            .get("blocks")
            .and_then(Value::as_arr)
            .ok_or("missing blocks")?;
        for b in blocks {
            let kind = b
                .get("kind")
                .and_then(Value::as_str)
                .ok_or("missing kind")?;
            let block = match kind {
                "banner" => Block::Banner {
                    id: req_str(b, "id")?,
                    title: req_str(b, "title")?,
                },
                "context" => Block::Context {
                    key: req_str(b, "key")?,
                    value: req_str(b, "value")?,
                },
                "note" => Block::Note(req_str(b, "text")?),
                "header" => Block::Header(req_cells(b)?),
                "row" => Block::Row(req_cells(b)?),
                "blank" => Block::Blank,
                other => return Err(format!("unknown block kind '{other}'")),
            };
            report.blocks.push(block);
        }
        Ok(report)
    }

    /// The directory report artifacts are written to / read from:
    /// `$FGQOS_RESULTS_DIR`, or `results` relative to the working
    /// directory.
    pub fn results_dir() -> PathBuf {
        std::env::var_os("FGQOS_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results"))
    }

    /// Prints the report to stdout (byte-identical to the legacy tables)
    /// and writes the JSON artifact to
    /// [`results_dir()`](Report::results_dir)`/<exp>.json`.
    ///
    /// An unwritable artifact directory is reported on stderr and does not
    /// disturb the stdout capture.
    pub fn emit(&self) {
        print!("{}", self.render_text());
        let dir = Report::results_dir();
        let path = dir.join(format!("{}.json", self.exp));
        let payload = format!("{}\n", self.to_json().to_pretty());
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&dir)?;
            std::fs::write(&path, &payload)
        };
        if let Err(e) = write() {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

fn str_arr(cells: &[String]) -> Value {
    let mut a = Value::arr();
    for c in cells {
        a.push(Value::str(c.clone()));
    }
    a
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing '{key}'"))
}

fn req_cells(v: &Value) -> Result<Vec<String>, String> {
    let cells = v
        .get("cells")
        .and_then(Value::as_arr)
        .ok_or("missing 'cells'")?;
    cells
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or("non-string cell".to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("exp_sample");
        r.banner("EXP-X", "A sample experiment");
        r.context("seed", 42);
        r.header(&["col_a", "col_b"]);
        r.row(vec!["1".into(), "2.50".into()]);
        r.blank();
        r.banner("EXP-X.2", "Second section");
        r.row(vec!["x".into()]);
        r.note("per-port: worst target error 1.2 %");
        r
    }

    #[test]
    fn text_matches_legacy_layout() {
        let text = sample().render_text();
        let expected = "# EXP-X: A sample experiment\n\
                        #   seed = 42\n\
                        \x20        col_a          col_b\n\
                        \x20            1           2.50\n\
                        \n\
                        # EXP-X.2: Second section\n\
                        \x20            x\n\
                        #   per-port: worst target error 1.2 %\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let doc = r.to_json();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(REPORT_SCHEMA));
        let back = Report::from_json(&doc).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.render_text(), r.render_text());
        // And through the text form of the artifact.
        let parsed = fgqos_sim::json::Value::parse(&doc.to_pretty()).unwrap();
        assert_eq!(Report::from_json(&parsed).unwrap(), r);
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        let mut doc = Value::obj();
        doc.set("schema", Value::str("something.else"));
        assert!(Report::from_json(&doc).is_err());
    }
}
