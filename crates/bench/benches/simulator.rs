//! Criterion micro-benchmarks of the simulation substrate: cycle
//! throughput as the SoC grows, plus statistics hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fgqos_bench::scenarios::{
    greedy_soc, leap_soc, regulated_soc, LEAP_CYCLES, REGULATED_CYCLES, SOC_CYCLES,
};
use fgqos_sim::stats::LatencyStats;

const CYCLES: u64 = SOC_CYCLES;
const FF_CYCLES: u64 = REGULATED_CYCLES;

fn bench_soc_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("soc_cycles");
    g.throughput(Throughput::Elements(CYCLES));
    for masters in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(masters), &masters, |b, &m| {
            b.iter_batched(
                || greedy_soc(m),
                |mut soc| soc.run(CYCLES),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// Simulated-cycles-per-wall-second of the fast-forward core vs. naive
/// per-cycle stepping, on the regulated workload where skipping pays.
fn bench_fast_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("regulated_cycles");
    g.throughput(Throughput::Elements(FF_CYCLES));
    for (mode, naive) in [("fast", false), ("naive", true)] {
        g.bench_with_input(BenchmarkId::new(mode, 4), &naive, |b, &naive| {
            b.iter_batched(
                || {
                    let mut soc = regulated_soc(4);
                    soc.set_naive(naive);
                    soc
                },
                |mut soc| soc.run(FF_CYCLES),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// Steady-state leaping vs the plain event calendar on the long
/// saturated regulated run (the `BENCH_sim.json` `steady_state_leap`
/// entry). Both runs are bit-identical in results; only the wall clock
/// differs.
fn bench_steady_state_leap(c: &mut Criterion) {
    let mut g = c.benchmark_group("steady_state_leap");
    g.throughput(Throughput::Elements(LEAP_CYCLES));
    for (mode, leap) in [("leap", true), ("calendar", false)] {
        g.bench_with_input(BenchmarkId::new(mode, 2), &leap, |b, &leap| {
            b.iter_batched(
                || {
                    let mut soc = leap_soc();
                    soc.set_leap(leap);
                    soc
                },
                |mut soc| soc.run(LEAP_CYCLES),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_latency_stats(c: &mut Criterion) {
    c.bench_function("latency_stats_record", |b| {
        let mut s = LatencyStats::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.record(v >> 40);
        });
    });
    c.bench_function("latency_stats_percentile", |b| {
        let mut s = LatencyStats::new();
        for v in 0..10_000u64 {
            s.record(v * 7 % 100_000);
        }
        b.iter(|| s.percentile(0.99));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_soc_throughput, bench_fast_forward, bench_steady_state_leap, bench_latency_stats
}
criterion_main!(benches);
