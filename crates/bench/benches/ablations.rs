//! Criterion ablation benches: execution cost of the regulator's design
//! variants under a *realistic* duty cycle (mostly-idle windows with
//! bursts), and the cost of scaling the number of regulated ports in one
//! SoC. The outcome-level ablations (overshoot, latency, utilization per
//! variant) live in the `exp_ablations` binary; these benches check the
//! variants do not differ in *mechanism cost*, which is the argument for
//! implementing the conservative policy in hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fgqos_core::regulator::{ChargePolicy, OvershootPolicy, RegulatorConfig, TcRegulator};
use fgqos_sim::axi::Dir;
use fgqos_sim::dram::DramConfig;
use fgqos_sim::master::MasterKind;
use fgqos_sim::system::{Soc, SocBuilder, SocConfig};
use fgqos_workloads::spec::{SpecSource, TrafficSpec};

const CYCLES: u64 = 100_000;

fn regulated_soc(ports: usize, charge: ChargePolicy, overshoot: OvershootPolicy) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let mut b = SocBuilder::new(cfg);
    for i in 0..ports {
        let (reg, _d) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 2_048,
            enabled: true,
            charge,
            overshoot,
            ..RegulatorConfig::default()
        });
        let spec = TrafficSpec::stream((i as u64) << 28, 8 << 20, 512, Dir::Write);
        b = b.gated_master(
            format!("m{i}"),
            SpecSource::new(spec, i as u64),
            MasterKind::Accelerator,
            reg,
        );
    }
    b.build()
}

fn bench_charge_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_charge_policy");
    g.throughput(Throughput::Elements(CYCLES));
    for (name, charge) in [
        ("acceptance", ChargePolicy::Acceptance),
        ("completion", ChargePolicy::Completion),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || regulated_soc(4, charge, OvershootPolicy::Conservative),
                |mut soc| soc.run(CYCLES),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_overshoot_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_overshoot_policy");
    g.throughput(Throughput::Elements(CYCLES));
    for (name, overshoot) in [
        ("conservative", OvershootPolicy::Conservative),
        ("final_burst", OvershootPolicy::FinalBurst),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || regulated_soc(4, ChargePolicy::Acceptance, overshoot),
                |mut soc| soc.run(CYCLES),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_port_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_regulated_ports");
    g.throughput(Throughput::Elements(CYCLES));
    for ports in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(ports), &ports, |b, &p| {
            b.iter_batched(
                || regulated_soc(p, ChargePolicy::Acceptance, OvershootPolicy::Conservative),
                |mut soc| soc.run(CYCLES),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_charge_policy, bench_overshoot_policy, bench_port_scaling
}
criterion_main!(benches);
