//! Criterion micro-benchmarks of the regulation hot paths: what one
//! admission decision costs for each gate implementation, plus the
//! register-file and driver access paths.

use criterion::{criterion_group, criterion_main, Criterion};
use fgqos_baselines::memguard::{MemGuardConfig, MemGuardGate};
use fgqos_baselines::qos400::{OtRegulatorConfig, OtRegulatorGate};
use fgqos_baselines::tdma::{TdmaGate, TdmaSchedule};
use fgqos_core::bucket::{BucketConfig, LeakyBucketRegulator};
use fgqos_core::regulator::{OvershootPolicy, RegulatorConfig, TcRegulator};
use fgqos_core::shared::SharedRegulator;
use fgqos_sim::axi::{Dir, MasterId, Request};
use fgqos_sim::gate::{OpenGate, PortGate};
use fgqos_sim::time::Cycle;
use std::hint::black_box;

fn request(serial: u64) -> Request {
    Request::new(
        MasterId::new(0),
        serial,
        serial * 4096,
        16,
        Dir::Read,
        Cycle::new(serial),
    )
}

/// One cycle of gate work: clock tick plus one admission attempt.
fn drive(gate: &mut dyn PortGate, serial: &mut u64) {
    let now = Cycle::new(*serial);
    gate.on_cycle(now);
    let req = request(*serial);
    black_box(gate.try_accept(&req, now));
    *serial += 1;
}

fn bench_gates(c: &mut Criterion) {
    let mut g = c.benchmark_group("gate_admission");

    g.bench_function("open", |b| {
        let mut gate = OpenGate;
        let mut serial = 0u64;
        b.iter(|| drive(&mut gate, &mut serial));
    });

    g.bench_function("tc_conservative", |b| {
        let (mut gate, _d) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 100_000,
            enabled: true,
            ..RegulatorConfig::default()
        });
        let mut serial = 0u64;
        b.iter(|| drive(&mut gate, &mut serial));
    });

    g.bench_function("tc_final_burst", |b| {
        let (mut gate, _d) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 100_000,
            enabled: true,
            overshoot: OvershootPolicy::FinalBurst,
            ..RegulatorConfig::default()
        });
        let mut serial = 0u64;
        b.iter(|| drive(&mut gate, &mut serial));
    });

    g.bench_function("memguard", |b| {
        let mut gate = MemGuardGate::new(MemGuardConfig {
            tick_cycles: 1_000_000,
            budget_bytes: u64::MAX / 2,
            irq_latency_cycles: 2_000,
        });
        let mut serial = 0u64;
        b.iter(|| drive(&mut gate, &mut serial));
    });

    g.bench_function("leaky_bucket", |b| {
        let mut gate = LeakyBucketRegulator::new(BucketConfig {
            budget_bytes: 100_000,
            period_cycles: 1_000,
            depth_bytes: 100_000,
            ..BucketConfig::default()
        });
        let mut serial = 0u64;
        b.iter(|| drive(&mut gate, &mut serial));
    });

    g.bench_function("shared_budget", |b| {
        let group = SharedRegulator::new(1_000, 1_000_000);
        let mut gate = group.port_gate();
        let mut serial = 0u64;
        b.iter(|| drive(&mut gate, &mut serial));
    });

    g.bench_function("qos400_ot", |b| {
        let mut gate = OtRegulatorGate::new(OtRegulatorConfig {
            max_outstanding: usize::MAX / 2,
            txns_per_period: u32::MAX,
            period_cycles: 1_000,
        });
        let mut serial = 0u64;
        b.iter(|| drive(&mut gate, &mut serial));
    });

    g.bench_function("tdma", |b| {
        let mut gate = TdmaGate::new(TdmaSchedule::new(1_000, 4), vec![0, 2], 0);
        let mut serial = 0u64;
        b.iter(|| drive(&mut gate, &mut serial));
    });

    g.finish();
}

fn bench_driver(c: &mut Criterion) {
    let (_gate, driver) = TcRegulator::create(RegulatorConfig::default());
    c.bench_function("driver_telemetry_read", |b| {
        b.iter(|| black_box(driver.telemetry()));
    });
    c.bench_function("driver_budget_write", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = v.wrapping_add(64) | 1;
            driver.set_budget_bytes(v);
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gates, bench_driver
}
criterion_main!(benches);
