//! Memory-phase models of benchmark kernels.
//!
//! The paper's evaluation runs real kernels on the CPU and the FPGA
//! accelerators. What determines a kernel's interference footprint and
//! its sensitivity to regulation is its *memory phase structure*: how
//! many bytes it moves, in what pattern, at what intensity, and how much
//! computation separates the phases. [`Kernel`] captures that structure
//! for six representative kernels as sequences of
//! [`TrafficSpec`] phases; [`KernelSource`]
//! replays the sequence as a [`TrafficSource`].

use crate::spec::{AddressPattern, SpecSource, TrafficSpec};
use fgqos_sim::axi::{Dir, Response};
use fgqos_sim::master::{PendingRequest, TrafficSource};
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, SnapDecodeError, SnapReader, StateHasher};
use std::fmt;

/// A benchmark kernel with a fixed memory-phase model.
///
/// ```
/// use fgqos_workloads::kernels::Kernel;
/// use fgqos_sim::master::TrafficSource;
/// use fgqos_sim::time::Cycle;
///
/// let mut src = Kernel::Memcpy.source(0x1000_0000, 1, 42);
/// let first = src.next_request(Cycle::ZERO).expect("kernel generates traffic");
/// assert_eq!(first.addr, 0x1000_0000);
/// assert_eq!(Kernel::Memcpy.bytes_per_iteration(), 1024 * 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Bulk copy: balanced sequential read+write stream.
    Memcpy,
    /// STREAM triad: two sequential read streams feeding one write
    /// stream (read-heavy, maximum locality).
    StreamTriad,
    /// Tiled matrix multiply: tile loads (sequential), B-column walks
    /// (strided), result write-back, separated by compute.
    MatmulTile,
    /// 2-D 5-point stencil: row-strided reads around a sequential write.
    Stencil2d,
    /// Strided FFT stage: large power-of-two strides (bank-conflict
    /// heavy), even read/write mix.
    FftStride,
    /// Image pipeline stage: bursty read, long compute, bursty write.
    ImagePipeline,
}

impl Kernel {
    /// All modelled kernels, in reporting order.
    pub fn all() -> [Kernel; 6] {
        [
            Kernel::Memcpy,
            Kernel::StreamTriad,
            Kernel::MatmulTile,
            Kernel::Stencil2d,
            Kernel::FftStride,
            Kernel::ImagePipeline,
        ]
    }

    /// Short reporting name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Memcpy => "memcpy",
            Kernel::StreamTriad => "stream-triad",
            Kernel::MatmulTile => "matmul-tile",
            Kernel::Stencil2d => "stencil-2d",
            Kernel::FftStride => "fft-stride",
            Kernel::ImagePipeline => "image-pipeline",
        }
    }

    /// The kernel's memory phases, placed at `base` in the address map.
    ///
    /// Each phase has a bounded transaction count; one pass over all
    /// phases is one kernel iteration.
    pub fn phases(self, base: u64) -> Vec<TrafficSpec> {
        let m = 1 << 20; // 1 MiB footprint unit
        match self {
            Kernel::Memcpy => vec![TrafficSpec::stream(base, 2 * m, 256, Dir::Read)
                .with_write_ratio(0.5)
                .with_total(1024)],
            Kernel::StreamTriad => vec![TrafficSpec::stream(base, 3 * m, 256, Dir::Read)
                .with_write_ratio(0.34)
                .with_total(1536)],
            Kernel::MatmulTile => vec![
                // Tile load: sequential reads with light compute.
                TrafficSpec {
                    think: 20,
                    ..TrafficSpec::stream(base, m, 128, Dir::Read)
                }
                .with_total(256),
                // B-column walk: strided reads.
                TrafficSpec {
                    pattern: AddressPattern::Strided { stride: 4096 },
                    think: 10,
                    ..TrafficSpec::stream(base + 4 * m, 4 * m, 128, Dir::Read)
                }
                .with_total(256),
                // Result write-back after compute.
                TrafficSpec {
                    think: 40,
                    ..TrafficSpec::stream(base + 8 * m, m, 128, Dir::Write)
                }
                .with_total(128),
            ],
            Kernel::Stencil2d => vec![
                TrafficSpec {
                    pattern: AddressPattern::Strided { stride: 8192 },
                    think: 15,
                    ..TrafficSpec::stream(base, 4 * m, 128, Dir::Read)
                }
                .with_total(512),
                TrafficSpec {
                    think: 15,
                    ..TrafficSpec::stream(base + 4 * m, m, 128, Dir::Write)
                }
                .with_total(256),
            ],
            Kernel::FftStride => vec![TrafficSpec {
                pattern: AddressPattern::Strided { stride: 32_768 },
                ..TrafficSpec::stream(base, 8 * m, 64, Dir::Read)
            }
            .with_write_ratio(0.5)
            .with_total(1024)],
            Kernel::ImagePipeline => vec![
                TrafficSpec::stream(base, 2 * m, 512, Dir::Read).with_total(256),
                // Compute-dominated middle phase.
                TrafficSpec {
                    think: 200,
                    ..TrafficSpec::stream(base, m, 128, Dir::Read)
                }
                .with_total(128),
                TrafficSpec::stream(base + 2 * m, 2 * m, 512, Dir::Write).with_total(256),
            ],
        }
    }

    /// Total bytes one iteration of this kernel moves.
    pub fn bytes_per_iteration(self) -> u64 {
        self.phases(0).iter().map(|p| p.txn_bytes * p.total).sum()
    }

    /// A replayable source running `iterations` passes of the kernel at
    /// `base`, deterministic under `seed`.
    pub fn source(self, base: u64, iterations: u64, seed: u64) -> KernelSource {
        KernelSource::new(self.phases(base), iterations, seed)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Replays a phase sequence as a [`TrafficSource`].
#[derive(Debug, Clone)]
pub struct KernelSource {
    phases: Vec<TrafficSpec>,
    iterations: u64,
    seed: u64,
    iter: u64,
    phase: usize,
    current: Option<SpecSource>,
}

impl KernelSource {
    /// Creates a source replaying `phases` `iterations` times.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any phase is unbounded or invalid,
    /// or `iterations` is zero.
    pub fn new(phases: Vec<TrafficSpec>, iterations: u64, seed: u64) -> Self {
        assert!(!phases.is_empty(), "kernel needs at least one phase");
        assert!(iterations > 0, "iterations must be non-zero");
        for (i, p) in phases.iter().enumerate() {
            assert!(p.total != u64::MAX, "phase {i} must have a bounded total");
            if let Err(e) = p.validate() {
                panic!("invalid phase {i}: {e}");
            }
        }
        let mut ks = KernelSource {
            phases,
            iterations,
            seed,
            iter: 0,
            phase: 0,
            current: None,
        };
        ks.enter_phase();
        ks
    }

    /// Total transactions the source will generate.
    pub fn total_txns(&self) -> u64 {
        self.iterations * self.phases.iter().map(|p| p.total).sum::<u64>()
    }

    fn enter_phase(&mut self) {
        let spec = self.phases[self.phase];
        let seed = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.iter * 131 + self.phase as u64);
        self.current = Some(SpecSource::new(spec, seed));
    }

    /// Advances to the next phase/iteration; `false` when exhausted.
    fn advance(&mut self) -> bool {
        self.phase += 1;
        if self.phase >= self.phases.len() {
            self.phase = 0;
            self.iter += 1;
            if self.iter >= self.iterations {
                self.current = None;
                return false;
            }
        }
        self.enter_phase();
        true
    }
}

impl TrafficSource for KernelSource {
    fn next_request(&mut self, now: Cycle) -> Option<PendingRequest> {
        loop {
            let cur = self.current.as_mut()?;
            if let Some(p) = cur.next_request(now) {
                return Some(p);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn on_complete(&mut self, response: &Response, now: Cycle) {
        if let Some(cur) = self.current.as_mut() {
            cur.on_complete(response, now);
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        match &self.current {
            None => None,
            // An exhausted phase advances (and re-seeds) on the next
            // pull; poll so the phase transition is not skipped over.
            Some(cur) if cur.is_done() => Some(now),
            Some(cur) => cur.next_activity(now),
        }
    }

    fn is_done(&self) -> bool {
        self.current.is_none()
    }

    fn fork_source(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn TrafficSource>> {
        Some(Box::new(self.clone()))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("kernel-source");
        h.write_usize(self.phases.len());
        h.write_u64(self.iterations);
        h.write_u64(self.seed);
        h.write_u64(self.iter);
        h.write_usize(self.phase);
        match &self.current {
            Some(cur) => {
                h.write_bool(true);
                cur.snap_state(h);
            }
            None => h.write_bool(false),
        }
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("kernel-source")?;
        let at = r.position();
        let phases = r.read_usize("kernel phase count")?;
        if phases != self.phases.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "kernel phase count {phases} differs from built kernel ({})",
                    self.phases.len()
                ),
                at,
            });
        }
        self.iterations = r.read_u64("kernel iterations")?;
        self.seed = r.read_u64("kernel seed")?;
        self.iter = r.read_u64("kernel iter")?;
        let at = r.position();
        let phase = r.read_usize("kernel phase index")?;
        if phase >= self.phases.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!("kernel phase index {phase} out of range"),
                at,
            });
        }
        self.phase = phase;
        // The in-flight phase carries its own spec (a re-seeded copy of
        // `phases[self.phase]`), so it is rebuilt wholly from the stream.
        self.current = if r.read_bool("kernel current flag")? {
            Some(SpecSource::snap_load_new(r)?)
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_have_valid_phases() {
        for k in Kernel::all() {
            let phases = k.phases(0x1000_0000);
            assert!(!phases.is_empty(), "{k} has no phases");
            for p in &phases {
                p.validate().unwrap_or_else(|e| panic!("{k}: {e}"));
                assert_ne!(p.total, u64::MAX, "{k} phase unbounded");
            }
            assert!(k.bytes_per_iteration() > 0);
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn kernel_source_generates_expected_count() {
        let k = Kernel::Memcpy;
        let mut src = k.source(0, 2, 42);
        let expected = src.total_txns();
        let mut n = 0;
        while src.next_request(Cycle::ZERO).is_some() {
            n += 1;
            assert!(n <= expected, "generated more than declared");
        }
        assert_eq!(n, expected);
        assert!(src.is_done());
    }

    #[test]
    fn kernel_source_is_deterministic() {
        let mut a = Kernel::FftStride.source(0, 1, 7);
        let mut b = Kernel::FftStride.source(0, 1, 7);
        for _ in 0..200 {
            assert_eq!(a.next_request(Cycle::ZERO), b.next_request(Cycle::ZERO));
        }
    }

    #[test]
    fn phases_progress_through_iterations() {
        // MatmulTile has 3 phases: the source must visit all of them and
        // produce exactly phases×iterations transactions.
        let mut src = Kernel::MatmulTile.source(0, 3, 1);
        let expected = src.total_txns();
        let mut n = 0u64;
        while src.next_request(Cycle::ZERO).is_some() {
            n += 1;
        }
        assert_eq!(n, expected);
        assert_eq!(expected, 3 * (256 + 256 + 128));
    }

    #[test]
    #[should_panic(expected = "bounded total")]
    fn unbounded_phase_rejected() {
        use fgqos_sim::axi::Dir;
        let unbounded = TrafficSpec::stream(0, 1 << 20, 256, Dir::Read);
        let _ = KernelSource::new(vec![unbounded], 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = KernelSource::new(vec![], 1, 0);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Kernel::Stencil2d.to_string(), "stencil-2d");
    }
}
