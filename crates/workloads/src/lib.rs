//! # fgqos-workloads — traffic generators and benchmark kernel models
//!
//! Workloads for the `fgqos` experiments:
//!
//! * [`spec`] — a declarative traffic generator ([`TrafficSpec`] /
//!   [`SpecSource`]) covering the synthetic AXI traffic-generator
//!   configurations of the paper's evaluation: sequential, strided and
//!   random address patterns, read/write mixes, rate limits, closed-loop
//!   think times and on/off burst shaping.
//! * [`kernels`] — memory-phase models of the benchmark kernels the
//!   paper's accelerators and CPU tasks run (memcpy, STREAM triad, tiled
//!   matmul, 2-D stencil, strided FFT, image pipeline), expressed as
//!   phase sequences of [`TrafficSpec`]s.
//! * [`phased`] — multi-segment traffic ([`PhasedSource`]) that switches
//!   between [`TrafficSpec`]s at declared cycle boundaries; the workload
//!   half of scenario fault injection (rogue / bursty / halted masters).
//!
//! All generators are deterministic given a seed.

pub mod kernels;
pub mod phased;
pub mod spec;
pub mod trace;

pub use kernels::{Kernel, KernelSource};
pub use phased::PhasedSource;
pub use spec::{AddressPattern, BurstShape, SpecSource, TrafficSpec};
pub use trace::{parse_trace, write_trace, TraceRecord, TraceSource};

/// Commonly used items.
pub mod prelude {
    pub use crate::kernels::{Kernel, KernelSource};
    pub use crate::phased::PhasedSource;
    pub use crate::spec::{AddressPattern, BurstShape, SpecSource, TrafficSpec};
    pub use crate::trace::{parse_trace, write_trace, TraceRecord, TraceSource};
}
