//! Trace-driven workloads.
//!
//! The paper's evaluation mixes synthetic generators with real
//! accelerator traffic. Real traffic enters this reproduction as
//! *traces*: one record per transaction (inter-arrival gap, address,
//! size, direction), replayable deterministically by [`TraceSource`].
//! The plain-text format is one record per line:
//!
//! ```text
//! # delta_cycles addr_hex bytes dir
//! 0     0x10000000 256 R
//! 120   0x10000100 256 R
//! 40    0x20000000 1024 W
//! ```
//!
//! Traces can be parsed from any reader, serialized back, captured from
//! any other [`TrafficSource`], and trimmed/looped for experiments.

use crate::spec::TrafficSpec;
use fgqos_sim::axi::{Dir, Response, BEAT_BYTES, MAX_BURST_BEATS};
use fgqos_sim::master::{PendingRequest, TrafficSource};
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, SnapDecodeError, SnapReader, StateHasher};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// One traced transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycles since the previous record's generation instant.
    pub delta_cycles: u64,
    /// Byte address of the first beat.
    pub addr: u64,
    /// Transaction payload in bytes.
    pub bytes: u64,
    /// Direction.
    pub dir: Dir,
}

impl TraceRecord {
    /// Validates size constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.bytes == 0 || !self.bytes.is_multiple_of(BEAT_BYTES) {
            return Err(format!("bytes must be a positive multiple of {BEAT_BYTES}"));
        }
        if self.bytes / BEAT_BYTES > MAX_BURST_BEATS as u64 {
            return Err("bytes exceed one maximum burst".into());
        }
        Ok(())
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:#x} {} {}",
            self.delta_cycles, self.addr, self.bytes, self.dir
        )
    }
}

/// Error from [`parse_trace`].
#[derive(Debug)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn parse_u64(token: &str) -> Result<u64, String> {
    if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())
    } else {
        token
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }
}

/// Parses a whole trace. Blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns the first malformed line.
pub fn parse_trace(reader: impl BufRead) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut tok = body.split_whitespace();
        let mut next = |what: &str| {
            tok.next().ok_or_else(|| ParseTraceError {
                line: line_no,
                message: format!("missing {what}"),
            })
        };
        let delta = parse_u64(next("delta")?).map_err(|m| ParseTraceError {
            line: line_no,
            message: m,
        })?;
        let addr = parse_u64(next("addr")?).map_err(|m| ParseTraceError {
            line: line_no,
            message: m,
        })?;
        let bytes = parse_u64(next("bytes")?).map_err(|m| ParseTraceError {
            line: line_no,
            message: m,
        })?;
        let dir = match next("dir")? {
            "R" | "r" => Dir::Read,
            "W" | "w" => Dir::Write,
            other => {
                return Err(ParseTraceError {
                    line: line_no,
                    message: format!("direction must be R or W, got {other:?}"),
                })
            }
        };
        let rec = TraceRecord {
            delta_cycles: delta,
            addr,
            bytes,
            dir,
        };
        rec.validate().map_err(|m| ParseTraceError {
            line: line_no,
            message: m,
        })?;
        out.push(rec);
    }
    Ok(out)
}

/// Serializes a trace in the format [`parse_trace`] reads.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_trace(mut writer: impl Write, records: &[TraceRecord]) -> io::Result<()> {
    writeln!(writer, "# delta_cycles addr_hex bytes dir")?;
    for r in records {
        writeln!(writer, "{r}")?;
    }
    Ok(())
}

/// Captures the first `limit` transactions another source generates
/// (with their generation-time deltas) into a trace.
pub fn capture(source: &mut dyn TrafficSource, limit: usize) -> Vec<TraceRecord> {
    let mut out = Vec::with_capacity(limit);
    let mut last = Cycle::ZERO;
    let mut now = Cycle::ZERO;
    while out.len() < limit {
        match source.next_request(now) {
            Some(p) => {
                let at = p.not_before.max(now);
                out.push(TraceRecord {
                    delta_cycles: at.saturating_since(last),
                    addr: p.addr,
                    bytes: p.beats as u64 * BEAT_BYTES,
                    dir: p.dir,
                });
                last = at;
                now = at;
            }
            None => {
                if source.is_done() {
                    break;
                }
                now += 1;
            }
        }
    }
    out
}

/// Replays a trace as a [`TrafficSource`].
#[derive(Debug, Clone)]
pub struct TraceSource {
    records: Vec<TraceRecord>,
    loops: u64,
    idx: usize,
    done_loops: u64,
    next_ready: Cycle,
}

impl TraceSource {
    /// Creates a source replaying `records` once.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or contains an invalid record.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        TraceSource::with_loops(records, 1)
    }

    /// Creates a source replaying `records` `loops` times.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty, any record is invalid, or `loops`
    /// is zero.
    pub fn with_loops(records: Vec<TraceRecord>, loops: u64) -> Self {
        assert!(!records.is_empty(), "trace must not be empty");
        assert!(loops > 0, "loops must be non-zero");
        for (i, r) in records.iter().enumerate() {
            if let Err(e) = r.validate() {
                panic!("invalid trace record {i}: {e}");
            }
        }
        TraceSource {
            records,
            loops,
            idx: 0,
            done_loops: 0,
            next_ready: Cycle::ZERO,
        }
    }

    /// A synthetic trace captured from `spec` (convenience for tests and
    /// experiments needing a fixed, inspectable workload).
    pub fn from_spec(spec: TrafficSpec, seed: u64, limit: usize) -> Self {
        let mut src = crate::spec::SpecSource::new(spec, seed);
        TraceSource::new(capture(&mut src, limit))
    }

    /// Total transactions this source will generate.
    pub fn total_txns(&self) -> u64 {
        self.records.len() as u64 * self.loops
    }

    /// The underlying records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }
}

impl TrafficSource for TraceSource {
    fn next_request(&mut self, now: Cycle) -> Option<PendingRequest> {
        if self.done_loops >= self.loops {
            return None;
        }
        let rec = self.records[self.idx];
        // Deltas are generation-relative: pace from the later of the
        // schedule and the present.
        let not_before = (self.next_ready + rec.delta_cycles).max(now);
        self.next_ready = not_before;
        self.idx += 1;
        if self.idx >= self.records.len() {
            self.idx = 0;
            self.done_loops += 1;
        }
        Some(PendingRequest {
            addr: rec.addr,
            beats: (rec.bytes / BEAT_BYTES) as u16,
            dir: rec.dir,
            not_before,
        })
    }

    fn on_complete(&mut self, _response: &Response, _now: Cycle) {}

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        // Mirrors the `not_before` of the next record so a deferred pull
        // stages the same request naive stepping would.
        if self.done_loops >= self.loops {
            None
        } else {
            Some((self.next_ready + self.records[self.idx].delta_cycles).max(now))
        }
    }

    fn is_done(&self) -> bool {
        self.done_loops >= self.loops
    }

    fn fork_source(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn TrafficSource>> {
        Some(Box::new(self.clone()))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("trace-source");
        h.write_usize(self.records.len());
        for r in &self.records {
            h.write_u64(r.delta_cycles);
            h.write_u64(r.addr);
            h.write_u64(r.bytes);
            h.write_bool(r.dir == Dir::Write);
        }
        h.write_u64(self.loops);
        h.write_usize(self.idx);
        h.write_u64(self.done_loops);
        h.write_u64(self.next_ready.get());
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("trace-source")?;
        // The trace itself is configuration: the skeleton must replay
        // the same records, so verify rather than overwrite.
        let at = r.position();
        let len = r.read_usize("trace record count")?;
        if len != self.records.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "trace has {len} record(s) in stream, skeleton has {}",
                    self.records.len()
                ),
                at,
            });
        }
        for (i, built) in self.records.iter().enumerate() {
            let at = r.position();
            let delta = r.read_u64("trace record delta")?;
            let addr = r.read_u64("trace record addr")?;
            let bytes = r.read_u64("trace record bytes")?;
            let write = r.read_bool("trace record dir")?;
            if delta != built.delta_cycles
                || addr != built.addr
                || bytes != built.bytes
                || write != (built.dir == Dir::Write)
            {
                return Err(SnapDecodeError::BadValue {
                    what: format!("trace record {i} in stream differs from the built trace"),
                    at,
                });
            }
        }
        let at = r.position();
        let loops = r.read_u64("trace loops")?;
        if loops != self.loops {
            return Err(SnapDecodeError::BadValue {
                what: format!("trace loops {loops} in stream, skeleton has {}", self.loops),
                at,
            });
        }
        let at = r.position();
        self.idx = r.read_usize("trace idx")?;
        if self.idx >= self.records.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!("trace cursor {} outside the trace", self.idx),
                at,
            });
        }
        self.done_loops = r.read_u64("trace done_loops")?;
        self.next_ready = Cycle::new(r.read_u64("trace next_ready")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TrafficSpec;

    const SAMPLE: &str = "\
# a comment
0     0x1000 256 R

120   0x1100 256 r   # inline comment
40    0x2000 1024 W
";

    #[test]
    fn parse_roundtrip() {
        let recs = parse_trace(SAMPLE.as_bytes()).expect("parses");
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs[0],
            TraceRecord {
                delta_cycles: 0,
                addr: 0x1000,
                bytes: 256,
                dir: Dir::Read
            }
        );
        assert_eq!(recs[2].dir, Dir::Write);

        let mut buf = Vec::new();
        write_trace(&mut buf, &recs).expect("writes");
        let again = parse_trace(buf.as_slice()).expect("re-parses");
        assert_eq!(again, recs);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_trace("0 0x10 256 R\nbogus".as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_trace("0 0x10 100 R".as_bytes()).unwrap_err();
        assert!(err.message.contains("multiple"));
        let err = parse_trace("0 0x10 256 X".as_bytes()).unwrap_err();
        assert!(err.message.contains("direction"));
    }

    #[test]
    fn replay_paces_by_deltas() {
        let recs = vec![
            TraceRecord {
                delta_cycles: 0,
                addr: 0,
                bytes: 64,
                dir: Dir::Read,
            },
            TraceRecord {
                delta_cycles: 100,
                addr: 64,
                bytes: 64,
                dir: Dir::Read,
            },
            TraceRecord {
                delta_cycles: 50,
                addr: 128,
                bytes: 64,
                dir: Dir::Write,
            },
        ];
        let mut src = TraceSource::new(recs);
        let a = src.next_request(Cycle::ZERO).unwrap();
        let b = src.next_request(Cycle::ZERO).unwrap();
        let c = src.next_request(Cycle::ZERO).unwrap();
        assert_eq!(a.not_before.get(), 0);
        assert_eq!(b.not_before.get(), 100);
        assert_eq!(c.not_before.get(), 150);
        assert!(src.next_request(Cycle::ZERO).is_none());
        assert!(src.is_done());
    }

    #[test]
    fn looping_replays_whole_trace() {
        let recs = vec![TraceRecord {
            delta_cycles: 10,
            addr: 0,
            bytes: 64,
            dir: Dir::Read,
        }];
        let mut src = TraceSource::with_loops(recs, 3);
        assert_eq!(src.total_txns(), 3);
        let mut n = 0;
        while src.next_request(Cycle::ZERO).is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn capture_from_spec_source() {
        let spec = TrafficSpec::stream(0x4000, 1 << 20, 256, Dir::Read);
        let spec = TrafficSpec { gap: 50, ..spec };
        let src = TraceSource::from_spec(spec, 9, 10);
        assert_eq!(src.records().len(), 10);
        assert_eq!(src.records()[0].addr, 0x4000);
        assert_eq!(src.records()[1].delta_cycles, 50);
        assert!(src.records().iter().all(|r| r.bytes == 256));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        let _ = TraceSource::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid trace record")]
    fn invalid_record_rejected() {
        let _ = TraceSource::new(vec![TraceRecord {
            delta_cycles: 0,
            addr: 0,
            bytes: 3,
            dir: Dir::Read,
        }]);
    }
}
