//! Declarative synthetic traffic generation.
//!
//! A [`TrafficSpec`] describes one traffic phase the way the paper's
//! synthetic AXI traffic generators are configured: address pattern,
//! transaction size, direction mix, intensity (gap / think time) and
//! optional on/off burst shaping. [`SpecSource`] turns a spec into a
//! deterministic [`TrafficSource`].

use fgqos_sim::axi::Response;
use fgqos_sim::axi::{Dir, BEAT_BYTES, MAX_BURST_BEATS};
use fgqos_sim::leap::LeapSupport;
use fgqos_sim::master::{PendingRequest, TrafficSource};
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, SnapDecodeError, SnapReader, StateHasher};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Address generation pattern of a traffic phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressPattern {
    /// Consecutive addresses (maximum row locality).
    Sequential,
    /// Fixed stride between transactions. Large power-of-two strides
    /// defeat row locality and can pin a single bank.
    Strided {
        /// Byte stride between transaction start addresses.
        stride: u64,
    },
    /// Uniformly random transaction-aligned addresses in the footprint
    /// (worst-case row locality).
    Random,
}

/// On/off burst shaping of a traffic phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstShape {
    /// Length of the active (issuing) phase in cycles.
    pub on_cycles: u64,
    /// Length of the silent phase in cycles.
    pub off_cycles: u64,
}

/// One declarative traffic phase.
#[derive(Debug, Clone, Copy)]
pub struct TrafficSpec {
    /// First byte of the address footprint.
    pub base: u64,
    /// Footprint size in bytes (addresses wrap inside it).
    pub footprint: u64,
    /// Bytes per transaction (positive multiple of the beat size, at
    /// most one maximum burst).
    pub txn_bytes: u64,
    /// Direction of transactions; [`TrafficSpec::write_ratio`] can blend.
    pub dir: Dir,
    /// Fraction of transactions flipped to the opposite direction
    /// (`0.0` = pure `dir`, `0.5` = even mix).
    pub write_ratio: f64,
    /// Address pattern.
    pub pattern: AddressPattern,
    /// Minimum issue-to-issue spacing in cycles.
    pub gap: u64,
    /// Closed-loop think time after each completion, in cycles.
    pub think: u64,
    /// Total transactions in this phase (`u64::MAX` = unbounded).
    pub total: u64,
    /// Optional on/off shaping.
    pub burst: Option<BurstShape>,
}

impl TrafficSpec {
    /// A greedy sequential stream: the canonical bandwidth hog.
    pub fn stream(base: u64, footprint: u64, txn_bytes: u64, dir: Dir) -> Self {
        TrafficSpec {
            base,
            footprint,
            txn_bytes,
            dir,
            write_ratio: 0.0,
            pattern: AddressPattern::Sequential,
            gap: 0,
            think: 0,
            total: u64::MAX,
            burst: None,
        }
    }

    /// A latency-sensitive closed-loop reader: random reads with a think
    /// time, the canonical critical CPU-like actor.
    pub fn latency_sensitive(base: u64, footprint: u64, txn_bytes: u64, think: u64) -> Self {
        TrafficSpec {
            base,
            footprint,
            txn_bytes,
            dir: Dir::Read,
            write_ratio: 0.0,
            pattern: AddressPattern::Random,
            gap: 0,
            think,
            total: u64::MAX,
            burst: None,
        }
    }

    /// Bounds the phase to `total` transactions.
    pub fn with_total(mut self, total: u64) -> Self {
        self.total = total;
        self
    }

    /// Sets on/off burst shaping.
    pub fn with_burst(mut self, shape: BurstShape) -> Self {
        self.burst = Some(shape);
        self
    }

    /// Sets the opposite-direction blend ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `0.0..=1.0`.
    pub fn with_write_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "ratio must be within 0..=1");
        self.write_ratio = ratio;
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.txn_bytes == 0 || !self.txn_bytes.is_multiple_of(BEAT_BYTES) {
            return Err(format!(
                "txn_bytes must be a positive multiple of {BEAT_BYTES}"
            ));
        }
        if self.txn_bytes / BEAT_BYTES > MAX_BURST_BEATS as u64 {
            return Err("txn_bytes exceeds one maximum burst".into());
        }
        if self.footprint < self.txn_bytes {
            return Err("footprint must hold at least one transaction".into());
        }
        if !(0.0..=1.0).contains(&self.write_ratio) {
            return Err("write_ratio must be within 0..=1".into());
        }
        if let Some(b) = self.burst {
            if b.on_cycles == 0 {
                return Err("burst on-phase must be non-zero".into());
            }
        }
        Ok(())
    }

    /// Number of beats per transaction.
    pub fn beats(&self) -> u16 {
        (self.txn_bytes / BEAT_BYTES) as u16
    }
}

/// Deterministic [`TrafficSource`] driven by a [`TrafficSpec`].
#[derive(Debug, Clone)]
pub struct SpecSource {
    spec: TrafficSpec,
    rng: SmallRng,
    cursor: u64,
    issued: u64,
    next_ready: Cycle,
}

impl SpecSource {
    /// Creates a source from a spec with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`TrafficSpec::validate`].
    pub fn new(spec: TrafficSpec, seed: u64) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid TrafficSpec: {e}");
        }
        SpecSource {
            spec,
            rng: SmallRng::seed_from_u64(seed),
            cursor: 0,
            issued: 0,
            next_ready: Cycle::ZERO,
        }
    }

    /// Delays the first request until `start`: the source is completely
    /// silent before it (its `next_activity` contract reflects the
    /// delay, so the event calendar skips the silent stretch). Used by
    /// warm-start experiments to launch a critical kernel only after a
    /// shared warm-up phase has reached steady state.
    pub fn with_start(mut self, start: Cycle) -> Self {
        self.next_ready = self.next_ready.max(start);
        self
    }

    /// The spec driving this source.
    pub fn spec(&self) -> &TrafficSpec {
        &self.spec
    }

    /// Transactions generated so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    fn next_addr(&mut self) -> u64 {
        let s = &self.spec;
        let slots = s.footprint / s.txn_bytes;
        let slot = match s.pattern {
            AddressPattern::Sequential => {
                let v = self.cursor;
                self.cursor = (self.cursor + 1) % slots;
                v
            }
            AddressPattern::Strided { stride } => {
                let addr_off = self.cursor;
                self.cursor = (self.cursor + stride.max(s.txn_bytes)) % s.footprint;
                return s.base + addr_off - addr_off % s.txn_bytes;
            }
            AddressPattern::Random => self.rng.gen_range(0..slots),
        };
        s.base + slot * s.txn_bytes
    }

    fn next_dir(&mut self) -> Dir {
        let flip = self.spec.write_ratio > 0.0 && self.rng.gen_bool(self.spec.write_ratio);
        match (self.spec.dir, flip) {
            (d, false) => d,
            (Dir::Read, true) => Dir::Write,
            (Dir::Write, true) => Dir::Read,
        }
    }

    /// Rebuilds a source wholly from a serialized snapshot stream (the
    /// decode mirror of its `snap_state`). The spec itself travels in the
    /// stream, so this also reconstructs the in-flight phase of a
    /// [`KernelSource`](crate::kernels::KernelSource), whose phase spec
    /// is not part of the rebuilt skeleton.
    pub(crate) fn snap_load_new(r: &mut SnapReader<'_>) -> Result<SpecSource, SnapDecodeError> {
        r.section("spec-source")?;
        let spec_at = r.position();
        let base = r.read_u64("spec base")?;
        let footprint = r.read_u64("spec footprint")?;
        let txn_bytes = r.read_u64("spec txn_bytes")?;
        let dir = if r.read_bool("spec dir")? {
            Dir::Write
        } else {
            Dir::Read
        };
        let write_ratio = r.read_f64("spec write_ratio")?;
        let tag_at = r.position();
        let pattern = match r.read_u8("spec pattern tag")? {
            0 => AddressPattern::Sequential,
            1 => AddressPattern::Strided {
                stride: r.read_u64("spec stride")?,
            },
            2 => AddressPattern::Random,
            t => {
                return Err(SnapDecodeError::BadValue {
                    what: format!("unknown address-pattern tag {t}"),
                    at: tag_at,
                })
            }
        };
        let gap = r.read_u64("spec gap")?;
        let think = r.read_u64("spec think")?;
        let total = r.read_u64("spec total")?;
        let burst = if r.read_bool("spec burst flag")? {
            Some(BurstShape {
                on_cycles: r.read_u64("spec burst on_cycles")?,
                off_cycles: r.read_u64("spec burst off_cycles")?,
            })
        } else {
            None
        };
        let spec = TrafficSpec {
            base,
            footprint,
            txn_bytes,
            dir,
            write_ratio,
            pattern,
            gap,
            think,
            total,
            burst,
        };
        if let Err(e) = spec.validate() {
            return Err(SnapDecodeError::BadValue {
                what: format!("serialized TrafficSpec invalid: {e}"),
                at: spec_at,
            });
        }
        let mut words = [0u64; 4];
        for w in &mut words {
            *w = r.read_u64("spec rng word")?;
        }
        Ok(SpecSource {
            spec,
            rng: SmallRng::from_state(words),
            cursor: r.read_u64("spec cursor")?,
            issued: r.read_u64("spec issued")?,
            next_ready: Cycle::new(r.read_u64("spec next_ready")?),
        })
    }

    /// Shifts `t` into the next on-phase if burst shaping is active.
    fn align_to_burst(&self, t: Cycle) -> Cycle {
        let Some(b) = self.spec.burst else { return t };
        let period = b.on_cycles + b.off_cycles;
        let phase = t.get() % period;
        if phase < b.on_cycles {
            t
        } else {
            Cycle::new(t.get() - phase + period)
        }
    }
}

impl TrafficSource for SpecSource {
    fn next_request(&mut self, now: Cycle) -> Option<PendingRequest> {
        if self.issued >= self.spec.total {
            return None;
        }
        let not_before = self.align_to_burst(self.next_ready.max(now));
        self.next_ready = not_before + self.spec.gap;
        let addr = self.next_addr();
        let dir = self.next_dir();
        self.issued += 1;
        Some(PendingRequest {
            addr,
            beats: self.spec.beats(),
            dir,
            not_before,
        })
    }

    fn on_complete(&mut self, response: &Response, _now: Cycle) {
        if self.spec.think > 0 {
            self.next_ready = self.next_ready.max(response.completed_at + self.spec.think);
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        // Mirrors the `not_before` the next pull would compute, so a
        // master that skips straight here stages a bit-identical request.
        if self.issued >= self.spec.total {
            None
        } else {
            Some(self.align_to_burst(self.next_ready.max(now)))
        }
    }

    fn is_done(&self) -> bool {
        self.issued >= self.spec.total
    }

    fn leap_support(&self, _now: Cycle) -> LeapSupport {
        // A bounded phase caps the leap so exhaustion lands on a
        // simulated cycle; burst shaping reads `now % period`, so the
        // leap period must be a multiple of it. Random addressing and
        // direction blending need no constraint: they advance the RNG
        // words, which are plain snapshot state, so a verified
        // recurrence already proves the stream repeats.
        let mut s = if self.spec.total == u64::MAX {
            LeapSupport::clear()
        } else {
            LeapSupport::budget(self.spec.total.saturating_sub(self.issued))
        };
        if let Some(b) = self.spec.burst {
            s = s.merge(LeapSupport::modulus(b.on_cycles + b.off_cycles));
        }
        s
    }

    fn fork_source(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn TrafficSource>> {
        Some(Box::new(self.clone()))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("spec-source");
        let s = &self.spec;
        h.write_u64(s.base);
        h.write_u64(s.footprint);
        h.write_u64(s.txn_bytes);
        h.write_bool(s.dir == Dir::Write);
        h.write_f64(s.write_ratio);
        match s.pattern {
            AddressPattern::Sequential => h.write_u8(0),
            AddressPattern::Strided { stride } => {
                h.write_u8(1);
                h.write_u64(stride);
            }
            AddressPattern::Random => h.write_u8(2),
        }
        h.write_u64(s.gap);
        h.write_u64(s.think);
        h.write_u64(s.total);
        match s.burst {
            None => h.write_bool(false),
            Some(b) => {
                h.write_bool(true);
                h.write_u64(b.on_cycles);
                h.write_u64(b.off_cycles);
            }
        }
        for w in self.rng.state() {
            h.write_u64(w);
        }
        h.write_u64(self.cursor);
        h.write_counter_u64(self.issued);
        h.write_cycle(self.next_ready.get());
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        *self = SpecSource::snap_load_new(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> TrafficSpec {
        TrafficSpec::stream(0x1000, 1 << 20, 256, Dir::Read)
    }

    #[test]
    fn sequential_addresses_advance_and_wrap() {
        let spec = TrafficSpec {
            footprint: 512,
            ..base_spec()
        };
        let mut s = SpecSource::new(spec, 1);
        let addrs: Vec<u64> = (0..3)
            .map(|_| s.next_request(Cycle::ZERO).unwrap().addr)
            .collect();
        assert_eq!(addrs, [0x1000, 0x1100, 0x1000]);
    }

    #[test]
    fn strided_addresses_use_stride() {
        let spec = TrafficSpec {
            pattern: AddressPattern::Strided { stride: 4096 },
            ..base_spec()
        };
        let mut s = SpecSource::new(spec, 1);
        let a = s.next_request(Cycle::ZERO).unwrap().addr;
        let b = s.next_request(Cycle::ZERO).unwrap().addr;
        assert_eq!(b - a, 4096);
    }

    #[test]
    fn random_addresses_stay_in_footprint_and_are_deterministic() {
        let spec = TrafficSpec {
            pattern: AddressPattern::Random,
            footprint: 1 << 16,
            ..base_spec()
        };
        let mut s1 = SpecSource::new(spec, 42);
        let mut s2 = SpecSource::new(spec, 42);
        for _ in 0..100 {
            let a = s1.next_request(Cycle::ZERO).unwrap();
            let b = s2.next_request(Cycle::ZERO).unwrap();
            assert_eq!(a, b, "same seed must give same stream");
            assert!(a.addr >= 0x1000 && a.addr + 256 <= 0x1000 + (1 << 16));
            assert_eq!(a.addr % 256, 0);
        }
    }

    #[test]
    fn write_ratio_blends_directions() {
        let spec = base_spec().with_write_ratio(0.5);
        let mut s = SpecSource::new(spec, 7);
        let mut writes = 0;
        for _ in 0..1000 {
            if s.next_request(Cycle::ZERO).unwrap().dir == Dir::Write {
                writes += 1;
            }
        }
        assert!(
            (350..=650).contains(&writes),
            "write mix off: {writes}/1000"
        );
    }

    #[test]
    fn burst_shaping_defers_into_on_phase() {
        let spec = base_spec().with_burst(BurstShape {
            on_cycles: 100,
            off_cycles: 900,
        });
        let mut s = SpecSource::new(spec, 1);
        // At cycle 50 (on-phase): immediate.
        assert_eq!(s.next_request(Cycle::new(50)).unwrap().not_before.get(), 50);
        // At cycle 500 (off-phase): deferred to cycle 1000.
        let mut s2 = SpecSource::new(spec, 1);
        assert_eq!(
            s2.next_request(Cycle::new(500)).unwrap().not_before.get(),
            1_000
        );
    }

    #[test]
    fn total_bounds_generation() {
        let spec = base_spec().with_total(2);
        let mut s = SpecSource::new(spec, 1);
        assert!(s.next_request(Cycle::ZERO).is_some());
        assert!(s.next_request(Cycle::ZERO).is_some());
        assert!(s.next_request(Cycle::ZERO).is_none());
        assert!(s.is_done());
        assert_eq!(s.issued(), 2);
    }

    #[test]
    fn with_start_delays_first_request() {
        let spec = base_spec().with_total(3);
        let mut s = SpecSource::new(spec, 1).with_start(Cycle::new(5_000));
        assert_eq!(s.next_activity(Cycle::ZERO), Some(Cycle::new(5_000)));
        let first = s.next_request(Cycle::new(10)).unwrap();
        assert_eq!(first.not_before.get(), 5_000);
        // Subsequent requests follow normally.
        let second = s.next_request(Cycle::new(5_000)).unwrap();
        assert_eq!(second.not_before.get(), 5_000);
    }

    #[test]
    fn gap_spaces_generation() {
        let spec = TrafficSpec {
            gap: 100,
            ..base_spec()
        };
        let mut s = SpecSource::new(spec, 1);
        let a = s.next_request(Cycle::new(10)).unwrap();
        let b = s.next_request(Cycle::new(10)).unwrap();
        assert_eq!(a.not_before.get(), 10);
        assert_eq!(b.not_before.get(), 110);
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(TrafficSpec {
            txn_bytes: 100,
            ..base_spec()
        }
        .validate()
        .is_err());
        assert!(TrafficSpec {
            txn_bytes: 8192,
            ..base_spec()
        }
        .validate()
        .is_err());
        assert!(TrafficSpec {
            footprint: 64,
            ..base_spec()
        }
        .validate()
        .is_err());
        assert!(TrafficSpec {
            burst: Some(BurstShape {
                on_cycles: 0,
                off_cycles: 5
            }),
            ..base_spec()
        }
        .validate()
        .is_err());
        assert!(base_spec().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid TrafficSpec")]
    fn constructor_panics_on_invalid() {
        let _ = SpecSource::new(
            TrafficSpec {
                txn_bytes: 0,
                ..base_spec()
            },
            1,
        );
    }
}
