//! Multi-segment synthetic traffic: one master, several [`TrafficSpec`]
//! phases switched at declared cycle boundaries.
//!
//! A [`PhasedSource`] is the workload half of scenario fault injection
//! (`[fault]` sections of the `.fgq` DSL, see `docs/scenario-format.md`):
//! a master runs its declared spec until a boundary cycle, then continues
//! as a different spec — rogue (all rate limits stripped), bursty (on/off
//! shaping imposed) or halted (a zero-total segment).
//!
//! # Determinism across simulation cores
//!
//! Segment switching must not break the bit-identity contract between
//! naive stepping and event-calendar fast-forward. Two properties make it
//! safe:
//!
//! * the master pulls from its source at the *same* cycle under both
//!   cores (the pull-parity machinery in `fgqos_sim::master`), and the
//!   switch decision is a pure function of `(state, pull cycle)`;
//! * every segment is pre-built at construction with
//!   [`SpecSource::with_start`] at its boundary, so [`PhasedSource::next_activity`]
//!   can predict the post-switch wake cycle without mutating anything —
//!   exactly what the event calendar needs to skip the silent gap.
//!
//! A segment is abandoned once the *next* request it would issue lands at
//! or past the next boundary (or it is exhausted); the successor then
//! starts issuing no earlier than its boundary.

use crate::spec::{SpecSource, TrafficSpec};
use fgqos_sim::axi::Response;
use fgqos_sim::master::{PendingRequest, TrafficSource};
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, SnapDecodeError, SnapReader, StateHasher};

/// Per-segment seed derivation: decorrelates the RNG streams of
/// successive segments without a second seed knob in the DSL.
fn segment_seed(seed: u64, index: usize) -> u64 {
    seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A [`TrafficSource`] that switches between [`TrafficSpec`] segments at
/// declared cycle boundaries (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct PhasedSource {
    segments: Vec<SpecSource>,
    starts: Vec<Cycle>,
    active: usize,
}

impl PhasedSource {
    /// Builds a source from `(boundary, spec)` segments. The first
    /// boundary must be cycle 0 (the declared workload) and boundaries
    /// must be strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, the first boundary is non-zero,
    /// boundaries are not strictly increasing, or any spec fails
    /// [`TrafficSpec::validate`].
    pub fn new(segments: Vec<(Cycle, TrafficSpec)>, seed: u64) -> Self {
        assert!(!segments.is_empty(), "phased source needs segments");
        assert!(
            segments[0].0 == Cycle::ZERO,
            "first segment must start at cycle 0"
        );
        assert!(
            segments.windows(2).all(|w| w[0].0 < w[1].0),
            "segment boundaries must be strictly increasing"
        );
        let starts: Vec<Cycle> = segments.iter().map(|(c, _)| *c).collect();
        let segments = segments
            .into_iter()
            .enumerate()
            .map(|(i, (start, spec))| {
                SpecSource::new(spec, segment_seed(seed, i)).with_start(start)
            })
            .collect();
        PhasedSource {
            segments,
            starts,
            active: 0,
        }
    }

    /// Index of the segment currently issuing.
    pub fn active_segment(&self) -> usize {
        self.active
    }

    /// The segment a pull at `now` would draw from: walks forward from
    /// `active` while the current segment is exhausted or its next issue
    /// would land at or past the next boundary. Pure in `(self, now)`.
    fn effective(&self, now: Cycle) -> usize {
        let mut idx = self.active;
        while idx + 1 < self.segments.len() {
            let boundary = self.starts[idx + 1];
            let abandoned = match self.segments[idx].next_activity(now) {
                None => true,
                Some(t) => t >= boundary,
            };
            if abandoned {
                idx += 1;
            } else {
                break;
            }
        }
        idx
    }
}

impl TrafficSource for PhasedSource {
    fn next_request(&mut self, now: Cycle) -> Option<PendingRequest> {
        self.active = self.effective(now);
        self.segments[self.active].next_request(now)
    }

    fn on_complete(&mut self, response: &Response, now: Cycle) {
        self.segments[self.active].on_complete(response, now);
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        self.segments[self.effective(now)].next_activity(now)
    }

    fn leap_support(&self, now: Cycle) -> fgqos_sim::LeapSupport {
        // The effective segment governs traffic until the next boundary;
        // the boundary itself is a one-shot absolute-time event, so it
        // caps any leap. Earlier (abandoned) and later (not yet started)
        // segments are frozen: their cycle-typed fields sit still between
        // periodic boundaries, which lockstep detection accepts as-is.
        let idx = self.effective(now);
        let seg = self.segments[idx].leap_support(now);
        match self.starts.get(idx + 1) {
            Some(boundary) => seg.merge(fgqos_sim::LeapSupport::until(*boundary)),
            None => seg,
        }
    }

    fn is_done(&self) -> bool {
        // Done only when nothing from the active segment on can ever
        // issue again (a pre-built future segment with total 0 — a
        // declared halt — counts as already exhausted).
        self.segments[self.active..].iter().all(SpecSource::is_done)
    }

    fn fork_source(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn TrafficSource>> {
        Some(Box::new(self.clone()))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("phased-source");
        h.write_usize(self.segments.len());
        h.write_usize(self.active);
        for (start, seg) in self.starts.iter().zip(&self.segments) {
            h.write_u64(start.get());
            seg.snap_state(h);
        }
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("phased-source")?;
        let at = r.position();
        let n = r.read_usize("phased segment count")?;
        if n != self.segments.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "{n} phased segment(s) in stream, skeleton has {}",
                    self.segments.len()
                ),
                at,
            });
        }
        let at = r.position();
        let active = r.read_usize("phased active segment")?;
        if active >= n {
            return Err(SnapDecodeError::BadValue {
                what: format!("phased active segment {active} out of range {n}"),
                at,
            });
        }
        self.active = active;
        for (start, seg) in self.starts.iter().zip(&mut self.segments) {
            let at = r.position();
            let s = r.read_u64("phased segment start")?;
            if s != start.get() {
                return Err(SnapDecodeError::BadValue {
                    what: format!(
                        "phased segment start {s} in stream, skeleton has {}",
                        start.get()
                    ),
                    at,
                });
            }
            seg.snap_load(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_sim::axi::Dir;

    fn spec(gap: u64, total: u64) -> TrafficSpec {
        TrafficSpec {
            gap,
            total,
            ..TrafficSpec::stream(0, 1 << 20, 256, Dir::Read)
        }
    }

    #[test]
    fn switches_at_boundary() {
        let mut s = PhasedSource::new(
            vec![
                (Cycle::ZERO, spec(100, u64::MAX)),
                (Cycle::new(1_000), spec(0, u64::MAX)),
            ],
            7,
        );
        // Before the boundary the declared (gapped) segment issues.
        let a = s.next_request(Cycle::new(10)).unwrap();
        assert_eq!(a.not_before.get(), 10);
        assert_eq!(s.active_segment(), 0);
        // An issue landing just before the boundary still belongs to the
        // declared segment; the pull after it crosses and switches.
        let b = s.next_request(Cycle::new(990)).unwrap();
        assert_eq!(s.active_segment(), 0);
        assert_eq!(b.not_before.get(), 990);
        let c = s.next_request(Cycle::new(995)).unwrap();
        assert_eq!(s.active_segment(), 1);
        assert!(c.not_before.get() >= 1_000);
    }

    #[test]
    fn next_activity_predicts_the_switch() {
        let s = PhasedSource::new(
            vec![
                (Cycle::ZERO, spec(0, 0)), // immediately exhausted
                (Cycle::new(5_000), spec(0, 3)),
            ],
            1,
        );
        assert_eq!(s.next_activity(Cycle::ZERO), Some(Cycle::new(5_000)));
        assert!(!s.is_done(), "a future segment still has work");
    }

    #[test]
    fn halt_segment_finishes_the_source() {
        let mut s = PhasedSource::new(
            vec![
                (Cycle::ZERO, spec(0, 2)),
                (Cycle::new(100), spec(0, 0)), // declared halt
            ],
            1,
        );
        assert!(s.next_request(Cycle::ZERO).is_some());
        assert!(s.next_request(Cycle::ZERO).is_some());
        assert!(s.next_request(Cycle::new(50)).is_none());
        assert!(s.is_done());
        assert_eq!(s.next_activity(Cycle::new(50)), None);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let segs = || {
            vec![
                (Cycle::ZERO, spec(10, u64::MAX)),
                (Cycle::new(500), spec(0, u64::MAX)),
            ]
        };
        let mut a = PhasedSource::new(segs(), 42);
        let mut b = PhasedSource::new(segs(), 42);
        for t in (0..2_000u64).step_by(37) {
            assert_eq!(a.next_request(Cycle::new(t)), b.next_request(Cycle::new(t)));
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let segs = || {
            vec![
                (Cycle::ZERO, spec(10, u64::MAX)),
                (Cycle::new(300), spec(0, u64::MAX)),
            ]
        };
        let mut a = PhasedSource::new(segs(), 9);
        for t in (0..600u64).step_by(23) {
            let _ = a.next_request(Cycle::new(t));
        }
        let mut h = StateHasher::recording();
        a.snap_state(&mut h);
        let bytes = h.take_bytes();
        let mut b = PhasedSource::new(segs(), 9);
        let mut r = SnapReader::new(&bytes);
        b.snap_load(&mut r).expect("loads");
        r.expect_end().expect("stream fully consumed");
        assert_eq!(a.active_segment(), b.active_segment());
        assert_eq!(
            a.next_request(Cycle::new(700)),
            b.next_request(Cycle::new(700))
        );
    }
}
