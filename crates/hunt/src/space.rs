//! The search space: candidate aggressor placements, burst phasings,
//! fault disturbances and regulator knob settings, plus the `.fgq`
//! renderer that turns a candidate into runnable scenario text.
//!
//! A **candidate** is a *family* (extra aggressor masters + fault
//! overlays, which change the scenario text) plus a *point* (the
//! `(period, budget)` programmed into every best-effort regulator at
//! the warm boundary). Candidates sharing a family share one scenario
//! text — and therefore one warmed prefix — so the evaluator can fork a
//! single snapshot per family and run only cheap divergent tails.

use fgqos_bench::rng::XorShift64Star;

/// Everything the engine needs to know about the base scenario without
/// parsing it: the text itself plus the structural facts the umbrella
/// extracted from its parsed form.
#[derive(Debug, Clone)]
pub struct BaseInfo {
    /// The base scenario text (unfiltered; the renderer strips global
    /// `expect` / `cycles` / `until_done` lines before appending).
    pub text: String,
    /// Name of the declared critical master the hunt attacks.
    pub critical: String,
    /// Synthetic (non-kernel) best-effort masters in the base scenario —
    /// the only legal targets for traffic faults.
    pub fault_targets: Vec<String>,
    /// Every declared master name (generated aggressors must not
    /// collide).
    pub reserved_names: Vec<String>,
    /// Scenario clock in MHz (for bandwidth computations downstream).
    pub clock_mhz: u64,
}

/// Address pattern of a generated aggressor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Sequential sweep over the footprint.
    Seq,
    /// Uniform random addresses over the footprint.
    Random,
    /// Fixed stride — the bank-mapping dimension: a stride of
    /// `row_bytes * banks` hammers one bank with a row miss per access.
    Strided(u64),
}

impl Pattern {
    fn render(self) -> String {
        match self {
            Pattern::Seq => "seq".to_string(),
            Pattern::Random => "random".to_string(),
            Pattern::Strided(s) => format!("strided:{s}"),
        }
    }
}

/// One generated best-effort aggressor master.
///
/// Aggressors are always `role best-effort`, so the point's
/// `(period, budget)` regulates them at the boundary: the hunt searches
/// for the worst interference *within* the regulated envelope, which is
/// exactly what the analytic bound claims to cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggressor {
    /// Base address — placed on or off the critical master's banks.
    pub base: u64,
    /// Footprint in bytes.
    pub footprint: u64,
    /// Transaction size in bytes.
    pub txn: u64,
    /// Address pattern (the bank-mapping knob).
    pub pattern: Pattern,
    /// Writes instead of reads (exercises write-to-read turnaround).
    pub write: bool,
    /// Optional on/off burst shaping in cycles.
    pub burst: Option<(u64, u64)>,
    /// Outstanding-transaction depth (0 = the kind's default).
    pub outstanding: u64,
    /// Workload RNG seed (part of the candidate identity).
    pub seed: u64,
}

/// A fault-injection overlay: re-shapes an existing synthetic master or
/// a generated aggressor at a chosen cycle (the burst-phasing knob).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disturbance {
    /// Strip every rate limit from `master` at cycle `at`.
    Rogue {
        /// Target master name.
        master: String,
        /// Switch cycle.
        at: u64,
    },
    /// Impose `on`/`off` burst shaping on `master` at cycle `at`.
    Bursty {
        /// Target master name.
        master: String,
        /// Switch cycle.
        at: u64,
        /// Burst on-phase in cycles (non-zero).
        on: u64,
        /// Burst off-phase in cycles.
        off: u64,
    },
}

impl Disturbance {
    /// The `(master, cycle)` slot this fault occupies — the DSL allows
    /// at most one traffic fault per slot.
    pub fn slot(&self) -> (&str, u64) {
        match self {
            Disturbance::Rogue { master, at } => (master, *at),
            Disturbance::Bursty { master, at, .. } => (master, *at),
        }
    }
}

/// The text-changing half of a candidate: generated aggressors plus
/// fault overlays. Equal families render equal scenario text and share
/// one warmed prefix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FamilySpec {
    /// Generated aggressor masters, in declaration order.
    pub aggressors: Vec<Aggressor>,
    /// Fault overlays, in declaration order.
    pub faults: Vec<Disturbance>,
}

/// Declared regulator knobs every aggressor carries through the warmed
/// prefix (the point's knobs replace them at the boundary). Fixed so
/// that all points of a family share one prefix.
const WARMUP_PERIOD: u64 = 1_000;
const WARMUP_BUDGET: u64 = 2_048;

impl FamilySpec {
    /// Name of the `i`-th generated aggressor.
    pub fn aggressor_name(i: usize) -> String {
        format!("hx{i}")
    }

    /// Renders the candidate scenario: the filtered base text plus this
    /// family's overlay sections.
    pub fn render(&self, base: &BaseInfo) -> String {
        let mut out = filter_base(&base.text);
        if self.aggressors.is_empty() && self.faults.is_empty() {
            return out;
        }
        out.push_str("\n# hunt overlay\n");
        for (i, a) in self.aggressors.iter().enumerate() {
            out.push_str(&format!(
                "\n[master {}]\nkind accel\nrole best-effort\nperiod {WARMUP_PERIOD}\n\
                 budget {WARMUP_BUDGET}\npattern {}\ndir {}\nbase 0x{:x}\nfootprint {}\n\
                 txn {}\noutstanding {}\nseed {}\n",
                Self::aggressor_name(i),
                a.pattern.render(),
                if a.write { "W" } else { "R" },
                a.base,
                a.footprint,
                a.txn,
                a.outstanding,
                a.seed,
            ));
            if let Some((on, off)) = a.burst {
                out.push_str(&format!("burst {on} {off}\n"));
            }
        }
        for (i, f) in self.faults.iter().enumerate() {
            match f {
                Disturbance::Rogue { master, at } => {
                    out.push_str(&format!("\n[fault hxf{i}]\nat {at}\nrogue {master}\n"));
                }
                Disturbance::Bursty {
                    master,
                    at,
                    on,
                    off,
                } => {
                    out.push_str(&format!(
                        "\n[fault hxf{i}]\nat {at}\nbursty {master} {on} {off}\n"
                    ));
                }
            }
        }
        out
    }

    /// Master names a fault may target in this family: the base
    /// scenario's synthetic best-effort masters plus every generated
    /// aggressor.
    pub fn fault_targets(&self, base: &BaseInfo) -> Vec<String> {
        let mut t = base.fault_targets.clone();
        for i in 0..self.aggressors.len() {
            t.push(Self::aggressor_name(i));
        }
        t
    }
}

/// Drops global `expect`, `cycles` and `until_done` directives from the
/// base text: the hunt pins its own expectations and run length, and a
/// stale base assertion must not fail the winning scenario's replay.
/// (All three are global keys in the DSL, never section-scoped content,
/// so line-level filtering is exact.)
pub fn filter_base(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let first = line.split_whitespace().next().unwrap_or("");
        if matches!(first, "expect" | "cycles" | "until_done") {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// A full candidate: family text plus the boundary regulator knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The text-changing half.
    pub family: FamilySpec,
    /// Replenishment period programmed at the boundary (cycles).
    pub period: u64,
    /// Per-window budget programmed at the boundary (bytes).
    pub budget: u64,
}

impl Candidate {
    /// Stable identity for dedup and deterministic tie-breaking: the
    /// rendered family overlay plus the knobs.
    pub fn key(&self, base: &BaseInfo) -> String {
        format!(
            "{}\u{0}p={}\u{0}b={}",
            self.family.render(base),
            self.period,
            self.budget
        )
    }
}

/// A time-dimension knob of one candidate that the post-climb bisection
/// pass can move continuously: the burst phasing of a generated
/// aggressor or bursty fault, and the switch cycle of any fault. Indices
/// refer to the candidate's own `aggressors` / `faults` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeKnob {
    /// On-phase of aggressor `i`'s burst shaping (cycles, non-zero).
    AggressorBurstOn(usize),
    /// Off-phase of aggressor `i`'s burst shaping (cycles).
    AggressorBurstOff(usize),
    /// Switch cycle of fault `i`.
    FaultAt(usize),
    /// On-phase of bursty fault `i` (cycles, non-zero).
    FaultBurstOn(usize),
    /// Off-phase of bursty fault `i` (cycles).
    FaultBurstOff(usize),
}

impl Candidate {
    /// Every time knob this candidate exposes, in a fixed declaration
    /// order (aggressors first, then faults) so the bisection pass is
    /// deterministic.
    pub fn time_knobs(&self) -> Vec<TimeKnob> {
        let mut knobs = Vec::new();
        for (i, a) in self.family.aggressors.iter().enumerate() {
            if a.burst.is_some() {
                knobs.push(TimeKnob::AggressorBurstOn(i));
                knobs.push(TimeKnob::AggressorBurstOff(i));
            }
        }
        for (i, f) in self.family.faults.iter().enumerate() {
            knobs.push(TimeKnob::FaultAt(i));
            if matches!(f, Disturbance::Bursty { .. }) {
                knobs.push(TimeKnob::FaultBurstOn(i));
                knobs.push(TimeKnob::FaultBurstOff(i));
            }
        }
        knobs
    }

    /// Current value of a knob.
    ///
    /// # Panics
    ///
    /// Panics if the knob does not exist on this candidate (callers pass
    /// knobs obtained from [`Candidate::time_knobs`]).
    pub fn knob(&self, k: TimeKnob) -> u64 {
        match k {
            TimeKnob::AggressorBurstOn(i) => self.family.aggressors[i].burst.expect("burst").0,
            TimeKnob::AggressorBurstOff(i) => self.family.aggressors[i].burst.expect("burst").1,
            TimeKnob::FaultAt(i) => self.family.faults[i].slot().1,
            TimeKnob::FaultBurstOn(i) => match &self.family.faults[i] {
                Disturbance::Bursty { on, .. } => *on,
                Disturbance::Rogue { .. } => panic!("rogue fault has no burst phase"),
            },
            TimeKnob::FaultBurstOff(i) => match &self.family.faults[i] {
                Disturbance::Bursty { off, .. } => *off,
                Disturbance::Rogue { .. } => panic!("rogue fault has no burst phase"),
            },
        }
    }

    /// Returns a clone with the knob set to `v`, or `None` when the
    /// value is illegal there: a zero on-phase, or a fault cycle that
    /// would collide with another fault's `(master, cycle)` slot.
    pub fn with_knob(&self, k: TimeKnob, v: u64) -> Option<Candidate> {
        let mut c = self.clone();
        match k {
            TimeKnob::AggressorBurstOn(i) => {
                if v == 0 {
                    return None;
                }
                c.family.aggressors[i].burst.as_mut()?.0 = v;
            }
            TimeKnob::AggressorBurstOff(i) => {
                c.family.aggressors[i].burst.as_mut()?.1 = v;
            }
            TimeKnob::FaultAt(i) => {
                let master = self.family.faults[i].slot().0.to_string();
                let collides = self
                    .family
                    .faults
                    .iter()
                    .enumerate()
                    .any(|(j, f)| j != i && f.slot() == (master.as_str(), v));
                if collides {
                    return None;
                }
                match &mut c.family.faults[i] {
                    Disturbance::Rogue { at, .. } | Disturbance::Bursty { at, .. } => *at = v,
                }
            }
            TimeKnob::FaultBurstOn(i) => {
                if v == 0 {
                    return None;
                }
                match &mut c.family.faults[i] {
                    Disturbance::Bursty { on, .. } => *on = v,
                    Disturbance::Rogue { .. } => return None,
                }
            }
            TimeKnob::FaultBurstOff(i) => match &mut c.family.faults[i] {
                Disturbance::Bursty { off, .. } => *off = v,
                Disturbance::Rogue { .. } => return None,
            },
        }
        Some(c)
    }
}

/// Value ranges the generator and mutator draw from. The umbrella
/// derives these from the scenario and the DRAM geometry (strides that
/// land on one bank, bases on/off the critical master's range); the
/// engine never needs to know why a value is in the list.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Maximum generated aggressors per family (min 0).
    pub max_aggressors: usize,
    /// Maximum fault overlays per family (min 0).
    pub max_faults: usize,
    /// Candidate boundary periods (cycles, non-zero).
    pub periods: Vec<u64>,
    /// Candidate boundary budgets (bytes, non-zero).
    pub budgets: Vec<u64>,
    /// Candidate aggressor transaction sizes (bytes).
    pub txns: Vec<u64>,
    /// Candidate strides for [`Pattern::Strided`].
    pub strides: Vec<u64>,
    /// Candidate aggressor base addresses.
    pub bases: Vec<u64>,
    /// Candidate aggressor footprints (bytes, each ≥ max txn).
    pub footprints: Vec<u64>,
    /// Candidate outstanding depths.
    pub outstandings: Vec<u64>,
    /// Candidate burst on-phases (cycles, non-zero).
    pub burst_on: Vec<u64>,
    /// Candidate burst off-phases (cycles).
    pub burst_off: Vec<u64>,
    /// Candidate fault cycles.
    pub fault_at: Vec<u64>,
}

impl SearchSpace {
    /// Validates that every list a draw may touch is non-empty and
    /// well-formed. The engine calls this once up front so a bad space
    /// errors before any simulation.
    pub fn validate(&self) -> Result<(), String> {
        let need = [
            (!self.periods.is_empty(), "periods"),
            (!self.budgets.is_empty(), "budgets"),
            (!self.txns.is_empty(), "txns"),
            (!self.strides.is_empty(), "strides"),
            (!self.bases.is_empty(), "bases"),
            (!self.footprints.is_empty(), "footprints"),
            (!self.outstandings.is_empty(), "outstandings"),
            (!self.burst_on.is_empty(), "burst_on"),
            (!self.burst_off.is_empty(), "burst_off"),
            (!self.fault_at.is_empty(), "fault_at"),
        ];
        for (ok, name) in need {
            if !ok {
                return Err(format!("search space: '{name}' must be non-empty"));
            }
        }
        if self.periods.contains(&0) {
            return Err("search space: periods must be non-zero".into());
        }
        if self.budgets.contains(&0) {
            return Err("search space: budgets must be non-zero".into());
        }
        if self.burst_on.contains(&0) {
            return Err("search space: burst on-phases must be non-zero".into());
        }
        Ok(())
    }

    fn random_aggressor(&self, rng: &mut XorShift64Star) -> Aggressor {
        let pattern = match rng.next_below(3) {
            0 => Pattern::Seq,
            1 => Pattern::Random,
            _ => Pattern::Strided(*rng.pick(&self.strides)),
        };
        let burst = if rng.chance(1, 2) {
            Some((*rng.pick(&self.burst_on), *rng.pick(&self.burst_off)))
        } else {
            None
        };
        let txn = *rng.pick(&self.txns);
        // footprint must hold at least one transaction.
        let footprints: Vec<u64> = self
            .footprints
            .iter()
            .copied()
            .filter(|&f| f >= txn)
            .collect();
        let footprint = if footprints.is_empty() {
            txn
        } else {
            *rng.pick(&footprints)
        };
        Aggressor {
            base: *rng.pick(&self.bases),
            footprint,
            txn,
            pattern,
            write: rng.chance(1, 3),
            burst,
            outstanding: *rng.pick(&self.outstandings),
            seed: rng.range_inclusive(1, 1 << 20),
        }
    }

    fn random_faults(
        &self,
        family: &FamilySpec,
        base: &BaseInfo,
        rng: &mut XorShift64Star,
    ) -> Vec<Disturbance> {
        let targets = family.fault_targets(base);
        if targets.is_empty() || self.max_faults == 0 {
            return Vec::new();
        }
        let n = rng.next_below(self.max_faults as u64 + 1) as usize;
        let mut faults: Vec<Disturbance> = Vec::new();
        for _ in 0..n {
            let master = rng.pick(&targets).clone();
            let at = *rng.pick(&self.fault_at);
            // One traffic fault per (master, cycle): drop colliding draws.
            if faults.iter().any(|f| f.slot() == (master.as_str(), at)) {
                continue;
            }
            faults.push(if rng.chance(1, 2) {
                Disturbance::Rogue { master, at }
            } else {
                Disturbance::Bursty {
                    master,
                    at,
                    on: *rng.pick(&self.burst_on),
                    off: *rng.pick(&self.burst_off),
                }
            });
        }
        faults
    }

    /// Draws a uniform random candidate.
    pub fn random_candidate(&self, base: &BaseInfo, rng: &mut XorShift64Star) -> Candidate {
        let n_aggr = rng.next_below(self.max_aggressors as u64 + 1) as usize;
        let mut family = FamilySpec {
            aggressors: (0..n_aggr).map(|_| self.random_aggressor(rng)).collect(),
            faults: Vec::new(),
        };
        family.faults = self.random_faults(&family, base, rng);
        Candidate {
            family,
            period: *rng.pick(&self.periods),
            budget: *rng.pick(&self.budgets),
        }
    }

    /// Hill-climbing mutation: one random tweak of one dimension.
    /// Numeric regulator knobs use bisection steps — the new value is
    /// the midpoint of the current value and a random anchor from the
    /// space — so repeated mutation of a surviving parent converges on
    /// the worst setting instead of hopping the grid forever.
    pub fn mutate(
        &self,
        parent: &Candidate,
        base: &BaseInfo,
        rng: &mut XorShift64Star,
    ) -> Candidate {
        let mut c = parent.clone();
        // 0..=5: budget bisect, period bisect, aggressor tweak,
        // aggressor add/remove, fault re-roll, point re-roll.
        match rng.next_below(6) {
            0 => {
                let anchor = *rng.pick(&self.budgets);
                c.budget = midpoint(c.budget, anchor).max(1);
            }
            1 => {
                let anchor = *rng.pick(&self.periods);
                c.period = midpoint(c.period, anchor).max(1);
            }
            2 => {
                if c.family.aggressors.is_empty() {
                    c.family.aggressors.push(self.random_aggressor(rng));
                } else {
                    let i = rng.pick_index(c.family.aggressors.len());
                    c.family.aggressors[i] = self.random_aggressor(rng);
                }
            }
            3 => {
                if c.family.aggressors.len() < self.max_aggressors && rng.chance(2, 3) {
                    c.family.aggressors.push(self.random_aggressor(rng));
                } else if !c.family.aggressors.is_empty() {
                    let i = rng.pick_index(c.family.aggressors.len());
                    c.family.aggressors.remove(i);
                    // Faults may now target a vanished aggressor name;
                    // re-roll them against the shrunken family.
                    c.family.faults = self.random_faults(&c.family, base, rng);
                }
            }
            4 => {
                c.family.faults = self.random_faults(&c.family, base, rng);
            }
            _ => {
                c.period = *rng.pick(&self.periods);
                c.budget = *rng.pick(&self.budgets);
            }
        }
        c
    }

    /// The `[lo, hi]` bracket the bisection pass searches for a knob —
    /// the extremes of the grid list the knob's kind draws from (the
    /// grid samples the range; bisection fills the continuum between).
    /// On-phases are floored at 1 cycle.
    pub fn knob_bracket(&self, k: TimeKnob) -> (u64, u64) {
        let list = match k {
            TimeKnob::AggressorBurstOn(_) | TimeKnob::FaultBurstOn(_) => &self.burst_on,
            TimeKnob::AggressorBurstOff(_) | TimeKnob::FaultBurstOff(_) => &self.burst_off,
            TimeKnob::FaultAt(_) => &self.fault_at,
        };
        let lo = list.iter().copied().min().unwrap_or(0);
        let hi = list.iter().copied().max().unwrap_or(0);
        if matches!(k, TimeKnob::AggressorBurstOn(_) | TimeKnob::FaultBurstOn(_)) {
            (lo.max(1), hi.max(1))
        } else {
            (lo, hi)
        }
    }
}

/// Overflow-safe integer midpoint (rounds the two halves together).
pub fn midpoint(a: u64, b: u64) -> u64 {
    a / 2 + b / 2 + (a % 2 + b % 2) / 2
}

/// Renders the winning candidate as a standalone, replayable `.fgq`
/// scenario: the family text, a `[phase]` applying the winning knobs to
/// every best-effort master at the recorded warm boundary (mirroring
/// exactly what the batch evaluator programs after forking), a global
/// cycle horizon covering warm-up plus tail, and `expect` assertions
/// pinning each measured metric from both sides.
pub fn render_winner(
    base: &BaseInfo,
    candidate: &Candidate,
    boundary: u64,
    total_cycles: u64,
    seed: u64,
    expects: &[(String, String, u64)],
) -> String {
    let mut out = candidate.family.render(base);
    out.push_str(&format!(
        "\n# fgqos hunt winner (seed {seed}); knobs applied at the warm boundary\n\
         [phase hunt_winner]\nat {boundary}\nperiod * {}\nbudget * {}\nenable * on\n\
         \ncycles {total_cycles}\n\n",
        candidate.period, candidate.budget,
    ));
    for (metric, master, value) in expects {
        out.push_str(&format!("expect {metric}({master}) >= {value}\n"));
        out.push_str(&format!("expect {metric}({master}) <= {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BaseInfo {
        BaseInfo {
            text: "clock_mhz 1000\ncycles 400000\n\n[master cpu]\nkind cpu\nrole critical\n\n\
                   [master dma0]\nkind accel\nrole best-effort\n\nexpect isolation(cpu)\n"
                .into(),
            critical: "cpu".into(),
            fault_targets: vec!["dma0".into()],
            reserved_names: vec!["cpu".into(), "dma0".into()],
            clock_mhz: 1_000,
        }
    }

    fn space() -> SearchSpace {
        SearchSpace {
            max_aggressors: 3,
            max_faults: 2,
            periods: vec![500, 1_000, 4_000],
            budgets: vec![1_024, 8_192, 65_536],
            txns: vec![256, 1_024],
            strides: vec![16_384],
            bases: vec![0, 0x4000_0000],
            footprints: vec![1 << 20, 16 << 20],
            outstandings: vec![0, 4],
            burst_on: vec![200, 2_000],
            burst_off: vec![0, 1_000],
            fault_at: vec![10_000, 50_000],
        }
    }

    #[test]
    fn filter_strips_only_global_directives() {
        let filtered = filter_base(&base().text);
        assert!(!filtered.contains("expect"));
        assert!(!filtered.contains("cycles 400000"));
        assert!(filtered.contains("[master cpu]"));
        assert!(filtered.contains("clock_mhz 1000"));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (b, s) = (base(), space());
        let draw = |seed: u64| {
            let mut rng = XorShift64Star::new(seed).split("generate");
            (0..10)
                .map(|_| s.random_candidate(&b, &mut rng).key(&b))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn mutation_changes_exactly_reachable_dimensions() {
        let (b, s) = (base(), space());
        let mut rng = XorShift64Star::new(3).split("generate");
        let parent = s.random_candidate(&b, &mut rng);
        let mut rng_m = XorShift64Star::new(3).split("mutate");
        let mut changed = 0;
        for _ in 0..32 {
            let child = s.mutate(&parent, &b, &mut rng_m);
            if child.key(&b) != parent.key(&b) {
                changed += 1;
            }
        }
        assert!(changed > 16, "mutation almost always moves: {changed}/32");
    }

    #[test]
    fn fault_slots_never_collide() {
        let (b, s) = (base(), space());
        let mut rng = XorShift64Star::new(11).split("generate");
        for _ in 0..200 {
            let c = s.random_candidate(&b, &mut rng);
            let slots: Vec<(String, u64)> = c
                .family
                .faults
                .iter()
                .map(|f| {
                    let (m, at) = f.slot();
                    (m.to_string(), at)
                })
                .collect();
            let mut dedup = slots.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(slots.len(), dedup.len(), "one traffic fault per slot");
        }
    }

    #[test]
    fn winner_renders_phase_cycles_and_pinned_expects() {
        let b = base();
        let cand = Candidate {
            family: FamilySpec::default(),
            period: 700,
            budget: 3_000,
        };
        let text = render_winner(
            &b,
            &cand,
            123_456,
            223_456,
            42,
            &[("max_latency".into(), "cpu".into(), 901)],
        );
        assert!(text.contains("[phase hunt_winner]"));
        assert!(text.contains("at 123456"));
        assert!(text.contains("period * 700"));
        assert!(text.contains("budget * 3000"));
        assert!(text.contains("cycles 223456"));
        assert!(text.contains("expect max_latency(cpu) >= 901"));
        assert!(text.contains("expect max_latency(cpu) <= 901"));
        assert!(!text.contains("cycles 400000"), "base horizon stripped");
        assert!(!text.contains("isolation"), "base expects stripped");
    }
}
