//! The versioned `fgqos.hunt-report` JSON document: measured worst case
//! vs the analytic bound, the winning scenario, and the search
//! trajectory.
//!
//! Byte-reproducibility rule: the document carries **no wall-clock
//! data**. Everything in it is a pure function of `(seed, config,
//! scenario)`, so two runs of `fgqos hunt --seed N` emit identical
//! bytes (throughput numbers live in `BENCH_serve.json`, recorded by
//! `fleet_bench`, not here).

use crate::engine::{HuntConfig, HuntOutcome};
use crate::space::BaseInfo;
use fgqos_sim::json::Value;

/// Schema identifier of the hunt report document.
pub const HUNT_SCHEMA: &str = "fgqos.hunt-report";
/// Schema version of the hunt report document.
pub const HUNT_VERSION: u64 = 1;

/// The analytic bounds the measured worst case is compared against,
/// computed by the caller from `fgqos_core::analysis` over the winning
/// scenario's port configuration.
#[derive(Debug, Clone, Copy)]
pub struct BoundComparison {
    /// Worst-case per-transaction delay bound in cycles
    /// (`SystemModel::critical_delay_bound`); `None` when the regulated
    /// aggressor demand saturates the device and no finite bound exists.
    pub delay_bound: Option<u64>,
    /// Guaranteed critical throughput floor in bytes/s
    /// (`SystemModel::critical_throughput_bound`).
    pub throughput_floor: Option<f64>,
    /// Aggregate regulated utilization of the aggressor set
    /// (`SystemModel::regulated_utilization`).
    pub utilization: f64,
}

fn f64_value(v: f64) -> Value {
    // The json shim has no float type narrower than its own; round to
    // a stable fixed precision so report bytes never depend on float
    // formatting quirks.
    Value::str(format!("{v:.3}"))
}

/// Assembles the hunt report document. `winner_fgq` is the rendered
/// winning scenario (also written next to the report as a `.fgq` file
/// by the CLI); `replay_verified` records whether a cold replay of that
/// text reproduced the winning measurement bit-identically.
#[allow(clippy::too_many_arguments)]
pub fn render_report(
    cfg: &HuntConfig,
    base: &BaseInfo,
    warmup: u64,
    tail_cycles: u64,
    outcome: &HuntOutcome,
    bound: Option<&BoundComparison>,
    winner_fgq: &str,
    replay_verified: bool,
) -> Value {
    let mut doc = Value::obj();
    doc.set("schema", Value::str(HUNT_SCHEMA));
    doc.set("version", Value::from(HUNT_VERSION));
    doc.set("seed", Value::from(cfg.seed));
    doc.set("objective", Value::str(cfg.objective.as_str()));
    doc.set("critical", Value::str(base.critical.clone()));
    doc.set("warmup", Value::from(warmup));
    doc.set("tail_cycles", Value::from(tail_cycles));
    doc.set("evaluations", Value::from(outcome.evals_used as u64));
    doc.set("families", Value::from(outcome.families as u64));
    doc.set("refinement_rounds", Value::from(outcome.rounds as u64));
    doc.set(
        "bisection_evaluations",
        Value::from(outcome.bisect_evals as u64),
    );

    let m = &outcome.best.measured;
    let mut worst = Value::obj();
    worst.set("period", Value::from(outcome.best.candidate.period));
    worst.set("budget", Value::from(outcome.best.candidate.budget));
    worst.set(
        "aggressors",
        Value::from(outcome.best.candidate.family.aggressors.len() as u64),
    );
    worst.set(
        "faults",
        Value::from(outcome.best.candidate.family.faults.len() as u64),
    );
    let mut measured = Value::obj();
    measured.set("p50_latency", Value::from(m.p50));
    measured.set("p99_latency", Value::from(m.p99));
    measured.set("max_latency", Value::from(m.max));
    measured.set("bytes", Value::from(m.bytes));
    measured.set("bandwidth_bytes_per_s", f64_value(m.bandwidth));
    measured.set("boundary", Value::from(m.boundary));
    measured.set("end", Value::from(m.end));
    worst.set("measured", measured);
    doc.set("worst", worst);

    let mut b = Value::obj();
    match bound {
        Some(cmp) => {
            b.set("modeled", Value::Bool(true));
            b.set("utilization", f64_value(cmp.utilization));
            match cmp.delay_bound {
                Some(bound_cycles) => {
                    b.set("delay_bound", Value::from(bound_cycles));
                    b.set("measured_max", Value::from(m.max));
                    let violated = m.max > bound_cycles;
                    b.set("delay_violated", Value::Bool(violated));
                    if violated {
                        b.set("violation_cycles", Value::from(m.max - bound_cycles));
                    } else {
                        b.set("slack_cycles", Value::from(bound_cycles - m.max));
                        b.set("tightness", f64_value(m.max as f64 / bound_cycles as f64));
                    }
                }
                None => {
                    b.set("delay_bound", Value::Null);
                    b.set(
                        "note",
                        Value::str(
                            "regulated aggressor demand saturates the device; \
                             no finite delay bound exists for this configuration",
                        ),
                    );
                }
            }
            match cmp.throughput_floor {
                Some(floor) => {
                    b.set("throughput_floor_bytes_per_s", f64_value(floor));
                    b.set("measured_bandwidth_bytes_per_s", f64_value(m.bandwidth));
                }
                None => {
                    b.set("throughput_floor_bytes_per_s", Value::Null);
                }
            }
        }
        None => {
            b.set("modeled", Value::Bool(false));
        }
    }
    doc.set("bound", b);

    let mut traj = Value::arr();
    for t in &outcome.trajectory {
        let mut p = Value::obj();
        p.set("eval", Value::from(t.eval as u64));
        p.set("family", Value::str(t.family.clone()));
        p.set("period", Value::from(t.period));
        p.set("budget", Value::from(t.budget));
        p.set("objective", Value::from(t.objective));
        p.set("best", Value::from(t.best));
        traj.push(p);
    }
    doc.set("trajectory", traj);

    let mut winner = Value::obj();
    winner.set("fgq", Value::str(winner_fgq));
    winner.set("replay_verified", Value::Bool(replay_verified));
    doc.set("winner", winner);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Evaluated, Measured, TrajectoryPoint};
    use crate::space::Candidate;

    fn outcome() -> HuntOutcome {
        HuntOutcome {
            best: Evaluated {
                candidate: Candidate {
                    family: Default::default(),
                    period: 1_000,
                    budget: 65_536,
                },
                measured: Measured {
                    p50: 40,
                    p99: 900,
                    max: 1_500,
                    bytes: 512_000,
                    bandwidth: 2.56e8,
                    boundary: 130_000,
                    end: 180_000,
                },
            },
            trajectory: vec![TrajectoryPoint {
                eval: 1,
                family: "deadbeef".into(),
                period: 1_000,
                budget: 65_536,
                objective: 1_500,
                best: 1_500,
            }],
            evals_used: 1,
            families: 1,
            rounds: 0,
            bisect_evals: 0,
        }
    }

    fn base() -> BaseInfo {
        BaseInfo {
            text: String::new(),
            critical: "cpu".into(),
            fault_targets: vec![],
            reserved_names: vec![],
            clock_mhz: 1_000,
        }
    }

    #[test]
    fn report_is_versioned_and_reproducible() {
        let cfg = HuntConfig::default();
        let render = || {
            render_report(
                &cfg,
                &base(),
                100_000,
                50_000,
                &outcome(),
                Some(&BoundComparison {
                    delay_bound: Some(2_000),
                    throughput_floor: Some(1.0e8),
                    utilization: 0.41,
                }),
                "scenario text",
                true,
            )
            .to_pretty()
        };
        let a = render();
        assert_eq!(a, render(), "identical inputs must render identical bytes");
        assert!(a.contains(HUNT_SCHEMA));
        assert!(a.contains("\"delay_bound\": 2000"));
        assert!(a.contains("\"slack_cycles\": 500"));
        assert!(a.contains("\"tightness\": \"0.750\""));
        assert!(!a.to_lowercase().contains("elapsed"), "no wall-clock data");
    }

    #[test]
    fn bound_violation_is_explicit() {
        let cfg = HuntConfig::default();
        let doc = render_report(
            &cfg,
            &base(),
            0,
            1,
            &outcome(),
            Some(&BoundComparison {
                delay_bound: Some(1_000),
                throughput_floor: None,
                utilization: 0.9,
            }),
            "",
            false,
        );
        let b = doc.get("bound").expect("bound section");
        assert_eq!(b.get("delay_violated"), Some(&Value::Bool(true)));
        assert_eq!(
            b.get("violation_cycles").and_then(Value::as_u64),
            Some(500),
            "1500 measured vs 1000 bound"
        );
    }

    #[test]
    fn unmodeled_bound_is_marked() {
        let cfg = HuntConfig::default();
        let doc = render_report(&cfg, &base(), 0, 1, &outcome(), None, "", false);
        let b = doc.get("bound").expect("bound section");
        assert_eq!(b.get("modeled"), Some(&Value::Bool(false)));
    }
}
