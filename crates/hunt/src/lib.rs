//! # fgqos-hunt — adversarial worst-case contention search
//!
//! Average-case interference numbers badly underestimate the true worst
//! case (Carletti et al., *The Importance of Worst-Case Memory
//! Contention Analysis for Heterogeneous SoCs*). This crate is the
//! search engine that *hunts* for the worst interference pattern
//! against a declared critical master in a scenario: a seeded candidate
//! generator enumerates aggressor placements, burst phasings, bank
//! mappings and regulator budget settings; candidates are evaluated as
//! snapshot-forked batches (one warmed prefix, many cheap divergent
//! tails); and a hill-climbing/bisection refinement loop mutates the
//! top-K worst candidates until a fixed evaluation budget is exhausted.
//!
//! ## Architecture
//!
//! The crate is deliberately **parser- and transport-ignorant**. It
//! renders candidate scenarios as `.fgq` text overlays appended to a
//! base scenario ([`space`]), and it evaluates them through an injected
//! closure — the `fgqos` umbrella wires that closure to either the
//! in-process `batch_reports` pool or a running `fgqos serve`
//! instance's `submit_batch` lanes. This keeps the dependency graph
//! acyclic (the scenario parser lives above this crate) and makes the
//! engine trivially testable with synthetic evaluators.
//!
//! ## Determinism
//!
//! Every random decision derives from one declared seed through
//! [`fgqos_bench::rng::XorShift64Star`] split streams, candidate
//! batches are grouped and iterated in lexicographic family order, and
//! ties in the ranking are broken by candidate identity — so
//! `fgqos hunt --seed N` is byte-reproducible, and the winning
//! candidate re-runs bit-identically from the emitted `.fgq` (see
//! [`space::render_winner`] and `docs/hunt.md`).

pub mod engine;
pub mod report;
pub mod space;

pub use engine::{Evaluated, HuntConfig, HuntOutcome, Measured, Objective, TrajectoryPoint};
pub use report::{render_report, BoundComparison, HUNT_SCHEMA, HUNT_VERSION};
pub use space::{Aggressor, BaseInfo, Candidate, Disturbance, FamilySpec, Pattern, SearchSpace};
