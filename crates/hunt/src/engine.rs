//! The hunt loop: seeded exploration, batched evaluation, and
//! hill-climbing refinement of the top-K worst candidates under a fixed
//! evaluation budget.
//!
//! Evaluation is injected as a closure so the engine works identically
//! over the in-process fork pool and a remote serve fleet; the engine
//! only ever hands the evaluator one *family* (scenario text) and its
//! pending `(period, budget)` points, which maps 1:1 onto the warm-start
//! batch machinery (`submit_batch` / `batch_reports`).

use crate::space::{midpoint, BaseInfo, Candidate, SearchSpace};
use fgqos_bench::rng::XorShift64Star;
use std::collections::{BTreeMap, BTreeSet};

/// What the hunt maximizes for the critical master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// 99th-percentile transaction latency.
    P99,
    /// Maximum observed transaction latency — the comparator for the
    /// analytic worst-case delay bound.
    Max,
}

impl Objective {
    /// Stable tag used in reports and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Objective::P99 => "p99_latency",
            Objective::Max => "max_latency",
        }
    }

    /// Parses a CLI tag.
    pub fn parse(tag: &str) -> Result<Self, String> {
        match tag {
            "p99" | "p99_latency" => Ok(Objective::P99),
            "max" | "max_latency" => Ok(Objective::Max),
            other => Err(format!("unknown objective '{other}' (use p99 | max)")),
        }
    }
}

/// Engine settings. All sizes are in candidate evaluations.
#[derive(Debug, Clone)]
pub struct HuntConfig {
    /// Root seed of every random decision.
    pub seed: u64,
    /// Total evaluation budget (explore + refine).
    pub evals: usize,
    /// Evaluations spent on pure random exploration before refinement
    /// (clamped to `evals`).
    pub explore: usize,
    /// Worst candidates carried into each refinement round.
    pub top_k: usize,
    /// Mutants drawn per carried parent per round.
    pub mutants_per_parent: usize,
    /// Extra evaluations for the post-climb bisection pass over the
    /// winner's time knobs — burst phases and fault cycles (0 disables
    /// the pass). Spent *in addition to* `evals`.
    pub bisect: usize,
    /// The maximized metric.
    pub objective: Objective,
}

impl Default for HuntConfig {
    fn default() -> Self {
        HuntConfig {
            seed: 1,
            evals: 48,
            explore: 24,
            top_k: 4,
            mutants_per_parent: 3,
            bisect: 12,
            objective: Objective::Max,
        }
    }
}

/// Critical-master metrics of one evaluated candidate, extracted from
/// the batch point report by the umbrella evaluator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measured {
    /// Median transaction latency (cycles).
    pub p50: u64,
    /// 99th-percentile transaction latency (cycles).
    pub p99: u64,
    /// Maximum transaction latency (cycles).
    pub max: u64,
    /// Bytes the critical master completed over the whole run.
    pub bytes: u64,
    /// Critical-master bandwidth in bytes/s as reported by the
    /// simulator over the simulated horizon.
    pub bandwidth: f64,
    /// Absolute cycle of the warm boundary the point forked from (the
    /// winning scenario's `[phase]` must re-program at exactly this
    /// cycle to replay bit-identically).
    pub boundary: u64,
    /// Absolute cycle the run ended at (boundary + tail; the winning
    /// scenario's global `cycles`).
    pub end: u64,
}

/// A candidate with its measurement.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The candidate.
    pub candidate: Candidate,
    /// Its measured critical-master metrics.
    pub measured: Measured,
}

impl Evaluated {
    /// The maximized scalar under `objective`.
    pub fn score(&self, objective: Objective) -> u64 {
        match objective {
            Objective::P99 => self.measured.p99,
            Objective::Max => self.measured.max,
        }
    }
}

/// One evaluation in search order, for the report's trajectory section.
#[derive(Debug, Clone)]
pub struct TrajectoryPoint {
    /// 1-based evaluation index.
    pub eval: usize,
    /// Short family fingerprint (hex of the family text hash).
    pub family: String,
    /// Boundary period of the candidate.
    pub period: u64,
    /// Boundary budget of the candidate.
    pub budget: u64,
    /// This candidate's objective value.
    pub objective: u64,
    /// Best objective value seen up to and including this evaluation.
    pub best: u64,
}

/// The hunt result.
#[derive(Debug, Clone)]
pub struct HuntOutcome {
    /// The worst candidate found (highest objective).
    pub best: Evaluated,
    /// Every evaluation in order.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Evaluations actually spent, bisection included (≤ `evals +
    /// bisect`; the space can run dry of distinct candidates).
    pub evals_used: usize,
    /// Distinct scenario texts evaluated (warmed prefixes paid).
    pub families: usize,
    /// Refinement rounds completed after exploration.
    pub rounds: usize,
    /// Evaluations the post-climb bisection pass spent (≤ `bisect`).
    pub bisect_evals: usize,
}

/// Evaluates one family: scenario text plus its `(period, budget)`
/// points, returning one [`Measured`] per point in point order.
pub type Evaluator<'a> = dyn FnMut(&str, &[(u64, u64)]) -> Result<Vec<Measured>, String> + 'a;

fn family_fingerprint(text: &str) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in text.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{:08x}", (h >> 32) as u32 ^ h as u32)
}

/// Runs the hunt (see the [module docs](self)).
///
/// Determinism contract: equal `(cfg, space, base)` and a pure
/// evaluator yield an identical outcome — candidate order, trajectory
/// and winner. Randomness comes only from `cfg.seed` via split streams;
/// batches iterate in lexicographic family order; ranking ties break on
/// candidate identity.
pub fn run(
    cfg: &HuntConfig,
    space: &SearchSpace,
    base: &BaseInfo,
    evaluator: &mut Evaluator<'_>,
) -> Result<HuntOutcome, String> {
    space.validate()?;
    if cfg.evals == 0 {
        return Err("hunt needs a non-zero evaluation budget".into());
    }
    let root = XorShift64Star::new(cfg.seed);
    let mut rng_gen = root.split("generate");
    let mut rng_mut = root.split("mutate");

    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut population: Vec<Evaluated> = Vec::new();
    let mut trajectory: Vec<TrajectoryPoint> = Vec::new();
    let mut families: BTreeSet<String> = BTreeSet::new();
    let mut evals_used = 0usize;
    let mut rounds = 0usize;
    let mut best_so_far = 0u64;

    // The baseline candidate — no overlay, first period/budget — is
    // always evaluated first, so the trajectory shows how far the search
    // moved from the unattacked scenario.
    let baseline = Candidate {
        family: Default::default(),
        period: space.periods[0],
        budget: space.budgets[0],
    };
    let mut pending: Vec<Candidate> = vec![baseline];
    seen.insert(pending[0].key(base));

    let explore = cfg.explore.min(cfg.evals);
    let mut dry_draws = 0usize;
    while pending.len() < explore && dry_draws < 1_000 {
        let c = space.random_candidate(base, &mut rng_gen);
        if seen.insert(c.key(base)) {
            pending.push(c);
            dry_draws = 0;
        } else {
            dry_draws += 1;
        }
    }

    while evals_used < cfg.evals && !pending.is_empty() {
        pending.truncate(cfg.evals - evals_used);
        // Group by family text: one warmed prefix per group, iterated
        // in lexicographic order for determinism.
        let mut groups: BTreeMap<String, Vec<Candidate>> = BTreeMap::new();
        for c in pending.drain(..) {
            groups.entry(c.family.render(base)).or_default().push(c);
        }
        for (text, members) in groups {
            families.insert(text.clone());
            let points: Vec<(u64, u64)> = members.iter().map(|c| (c.period, c.budget)).collect();
            let measured = evaluator(&text, &points)?;
            if measured.len() != members.len() {
                return Err(format!(
                    "evaluator returned {} results for {} points",
                    measured.len(),
                    members.len()
                ));
            }
            for (candidate, m) in members.into_iter().zip(measured) {
                evals_used += 1;
                let e = Evaluated {
                    candidate,
                    measured: m,
                };
                let score = e.score(cfg.objective);
                best_so_far = best_so_far.max(score);
                trajectory.push(TrajectoryPoint {
                    eval: evals_used,
                    family: family_fingerprint(&text),
                    period: e.candidate.period,
                    budget: e.candidate.budget,
                    objective: score,
                    best: best_so_far,
                });
                population.push(e);
            }
        }
        if evals_used >= cfg.evals {
            break;
        }

        // Refinement round: mutate the top-K worst.
        rounds += 1;
        let mut ranked: Vec<&Evaluated> = population.iter().collect();
        ranked.sort_by(|a, b| {
            b.score(cfg.objective)
                .cmp(&a.score(cfg.objective))
                .then_with(|| a.candidate.key(base).cmp(&b.candidate.key(base)))
        });
        let parents: Vec<Candidate> = ranked
            .iter()
            .take(cfg.top_k)
            .map(|e| e.candidate.clone())
            .collect();
        let mut dry = 0usize;
        for parent in &parents {
            let mut made = 0usize;
            while made < cfg.mutants_per_parent && dry < 200 {
                let child = space.mutate(parent, base, &mut rng_mut);
                if seen.insert(child.key(base)) {
                    pending.push(child);
                    made += 1;
                    dry = 0;
                } else {
                    dry += 1;
                }
            }
        }
        // A dried-up neighborhood falls back to fresh random draws so
        // the budget is still spent productively.
        let mut dry_fresh = 0usize;
        while pending.is_empty() && dry_fresh < 1_000 {
            let c = space.random_candidate(base, &mut rng_gen);
            if seen.insert(c.key(base)) {
                pending.push(c);
            } else {
                dry_fresh += 1;
            }
        }
    }

    // Post-climb bisection pass: the grid hill-climb can only land on
    // listed burst phases and fault cycles, but the worst alignment of a
    // burst against the regulator window (or a fault against the warm
    // boundary) usually lies *between* grid points. Bisect each time
    // knob of the current winner — probe the midpoints of the knob's
    // bracket halves, follow whichever side gets worse (for the
    // critical master), shrink, repeat — entirely deterministic: no RNG,
    // fixed knob order, plain integer midpoints.
    let mut bisect_evals = 0usize;
    let rank = |a: &Evaluated, b: &Evaluated| {
        a.score(cfg.objective)
            .cmp(&b.score(cfg.objective))
            .then_with(|| b.candidate.key(base).cmp(&a.candidate.key(base)))
    };
    if cfg.bisect > 0 {
        if let Some(mut leader) = population.iter().max_by(|a, b| rank(a, b)).cloned() {
            let knobs = leader.candidate.time_knobs();
            let mut brackets: Vec<(u64, u64)> =
                knobs.iter().map(|&k| space.knob_bracket(k)).collect();
            let mut moving = !knobs.is_empty();
            'pass: while moving && bisect_evals < cfg.bisect {
                moving = false;
                for (i, &k) in knobs.iter().enumerate() {
                    let (lo, hi) = brackets[i];
                    let cur = leader.candidate.knob(k).clamp(lo, hi);
                    let probes = [midpoint(lo, cur), midpoint(cur, hi)];
                    let mut improved_side = None;
                    for (side, &v) in probes.iter().enumerate() {
                        if bisect_evals >= cfg.bisect {
                            break 'pass;
                        }
                        if v == cur {
                            continue;
                        }
                        let Some(cand) = leader.candidate.with_knob(k, v) else {
                            continue;
                        };
                        if !seen.insert(cand.key(base)) {
                            continue;
                        }
                        let text = cand.family.render(base);
                        families.insert(text.clone());
                        let measured = evaluator(&text, &[(cand.period, cand.budget)])?;
                        if measured.len() != 1 {
                            return Err(format!(
                                "evaluator returned {} results for 1 point",
                                measured.len()
                            ));
                        }
                        bisect_evals += 1;
                        evals_used += 1;
                        let e = Evaluated {
                            candidate: cand,
                            measured: measured[0],
                        };
                        let score = e.score(cfg.objective);
                        best_so_far = best_so_far.max(score);
                        trajectory.push(TrajectoryPoint {
                            eval: evals_used,
                            family: family_fingerprint(&text),
                            period: e.candidate.period,
                            budget: e.candidate.budget,
                            objective: score,
                            best: best_so_far,
                        });
                        if rank(&e, &leader).is_gt() {
                            leader = e.clone();
                            improved_side = Some(side);
                        }
                        population.push(e);
                    }
                    // An improving left probe makes the old current value
                    // the new upper end (and vice versa); with no
                    // improvement both halves shrink toward the current
                    // value. Either way the bracket strictly narrows, so
                    // the pass terminates even with budget to spare.
                    let next = match improved_side {
                        Some(0) => (lo, cur),
                        Some(_) => (cur, hi),
                        None => (probes[0], probes[1].max(probes[0])),
                    };
                    // Keep going while the bracket narrows OR the leader
                    // moved (it can move without narrowing the bracket
                    // when the old value sat on a bracket end). A stuck
                    // leader shrinks the bracket every round, so the
                    // pass always terminates.
                    if next != (lo, hi) || improved_side.is_some() {
                        brackets[i] = next;
                        moving = true;
                    }
                }
            }
        }
    }

    let best = population
        .iter()
        .max_by(|a, b| rank(a, b))
        .cloned()
        .ok_or("no candidate was evaluated")?;
    Ok(HuntOutcome {
        best,
        trajectory,
        evals_used,
        families: families.len(),
        rounds,
        bisect_evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{FamilySpec, SearchSpace};

    fn base() -> BaseInfo {
        BaseInfo {
            text: "clock_mhz 1000\n[master cpu]\nkind cpu\nrole critical\n\n\
                   [master dma0]\nkind accel\nrole best-effort\n"
                .into(),
            critical: "cpu".into(),
            fault_targets: vec!["dma0".into()],
            reserved_names: vec!["cpu".into(), "dma0".into()],
            clock_mhz: 1_000,
        }
    }

    fn space() -> SearchSpace {
        SearchSpace {
            max_aggressors: 2,
            max_faults: 1,
            periods: vec![1_000, 2_000],
            budgets: vec![1_024, 4_096, 16_384],
            txns: vec![256],
            strides: vec![8_192],
            bases: vec![0],
            footprints: vec![1 << 20],
            outstandings: vec![0],
            burst_on: vec![500],
            burst_off: vec![500],
            fault_at: vec![5_000],
        }
    }

    /// A pure synthetic evaluator: latency grows with budget and with
    /// overlay size, so the search has a real gradient to climb.
    fn synthetic(text: &str, points: &[(u64, u64)]) -> Result<Vec<Measured>, String> {
        let overlay = text.matches("[master hx").count() as u64;
        let faults = text.matches("[fault").count() as u64;
        Ok(points
            .iter()
            .map(|&(period, budget)| {
                let max = 100 + budget / 8 + overlay * 40 + faults * 25 + 1_000 / period;
                Measured {
                    p50: max / 4,
                    p99: max / 2,
                    max,
                    bytes: 1 << 20,
                    bandwidth: 1e6,
                    boundary: 30_000,
                    end: 50_000,
                }
            })
            .collect())
    }

    #[test]
    fn equal_seeds_equal_outcomes() {
        let (b, s) = (base(), space());
        let cfg = HuntConfig {
            seed: 5,
            evals: 30,
            explore: 12,
            ..HuntConfig::default()
        };
        let run_once = || {
            let mut boxed: Box<Evaluator<'_>> =
                Box::new(|t: &str, p: &[(u64, u64)]| synthetic(t, p));
            run(&cfg, &s, &b, &mut *boxed).expect("hunt runs")
        };
        let a = run_once();
        let c = run_once();
        assert_eq!(a.evals_used, c.evals_used);
        assert_eq!(a.best.candidate, c.best.candidate);
        assert_eq!(a.trajectory.len(), c.trajectory.len());
        for (x, y) in a.trajectory.iter().zip(&c.trajectory) {
            assert_eq!(
                (x.eval, &x.family, x.period, x.budget, x.objective, x.best),
                (y.eval, &y.family, y.period, y.budget, y.objective, y.best)
            );
        }
    }

    #[test]
    fn refinement_beats_the_baseline() {
        let (b, s) = (base(), space());
        let cfg = HuntConfig {
            seed: 9,
            evals: 40,
            explore: 10,
            ..HuntConfig::default()
        };
        let mut ev: Box<Evaluator<'_>> = Box::new(|t: &str, p: &[(u64, u64)]| synthetic(t, p));
        let out = run(&cfg, &s, &b, &mut *ev).expect("hunt runs");
        let baseline = out.trajectory[0].objective;
        assert!(
            out.best.score(cfg.objective) > baseline,
            "search must beat the unattacked baseline: best {} vs baseline {baseline}",
            out.best.score(cfg.objective)
        );
        assert!(out.rounds >= 1, "budget beyond explore forces refinement");
        assert!(out.evals_used <= cfg.evals);
        // best-so-far is monotone.
        for w in out.trajectory.windows(2) {
            assert!(w[1].best >= w[0].best);
        }
    }

    #[test]
    fn budget_of_one_evaluates_only_the_baseline() {
        let (b, s) = (base(), space());
        let cfg = HuntConfig {
            seed: 1,
            evals: 1,
            explore: 8,
            ..HuntConfig::default()
        };
        let mut ev: Box<Evaluator<'_>> = Box::new(|t: &str, p: &[(u64, u64)]| synthetic(t, p));
        let out = run(&cfg, &s, &b, &mut *ev).expect("hunt runs");
        assert_eq!(out.evals_used, 1);
        assert_eq!(
            out.best.candidate.family,
            FamilySpec::default(),
            "the single evaluation is the baseline candidate"
        );
    }

    /// The worst fault cycle sits between the grid points, so only the
    /// post-climb bisection pass can approach it: score peaks at
    /// `at = 27_000` and the grid offers only 4_000 and 60_000.
    #[test]
    fn bisection_converges_on_an_off_grid_fault_cycle() {
        let b = base();
        let s = SearchSpace {
            max_aggressors: 0,
            max_faults: 1,
            fault_at: vec![4_000, 60_000],
            ..space()
        };
        let fault_at_of = |text: &str| -> Option<u64> {
            text.lines()
                .find_map(|l| l.strip_prefix("at ").and_then(|v| v.trim().parse().ok()))
        };
        let peaked = |text: &str, points: &[(u64, u64)]| -> Result<Vec<Measured>, String> {
            let at = fault_at_of(text);
            Ok(points
                .iter()
                .map(|_| {
                    // A fault is worth a lot; its phase alignment is a
                    // tent function peaking off-grid.
                    let max = match at {
                        Some(at) => 2_000 - at.abs_diff(27_000) / 32,
                        None => 100,
                    };
                    Measured {
                        p50: max / 4,
                        p99: max / 2,
                        max,
                        bytes: 1 << 20,
                        bandwidth: 1e6,
                        boundary: 30_000,
                        end: 50_000,
                    }
                })
                .collect())
        };
        let cfg = HuntConfig {
            seed: 3,
            evals: 16,
            explore: 8,
            bisect: 24,
            ..HuntConfig::default()
        };
        let mut ev: Box<Evaluator<'_>> = Box::new(|t: &str, p: &[(u64, u64)]| peaked(t, p));
        let out = run(&cfg, &s, &b, &mut *ev).expect("hunt runs");
        assert!(out.bisect_evals > 0, "the pass must spend probes");
        let winner_at = out
            .best
            .candidate
            .family
            .faults
            .first()
            .map(|f| f.slot().1)
            .expect("a fault is worth 1200+ points; the winner carries one");
        let grid_best = 27_000u64.abs_diff(4_000).min(27_000u64.abs_diff(60_000));
        assert!(
            winner_at.abs_diff(27_000) < grid_best,
            "bisection must beat every grid point: landed at {winner_at}"
        );
        // Deterministic: no RNG in the pass.
        let mut ev2: Box<Evaluator<'_>> = Box::new(|t: &str, p: &[(u64, u64)]| peaked(t, p));
        let out2 = run(&cfg, &s, &b, &mut *ev2).expect("hunt runs");
        assert_eq!(out.best.candidate, out2.best.candidate);
        assert_eq!(out.evals_used, out2.evals_used);
    }

    #[test]
    fn evaluator_errors_propagate() {
        let (b, s) = (base(), space());
        let cfg = HuntConfig::default();
        let mut ev: Box<Evaluator<'_>> =
            Box::new(|_: &str, _: &[(u64, u64)]| Err("backend down".into()));
        let err = run(&cfg, &s, &b, &mut *ev).unwrap_err();
        assert!(err.contains("backend down"));
    }
}
