//! Snapshot/fork primitives shared by the simulator and its drivers.
//!
//! The crate is deliberately tiny and dependency-free: it provides the
//! three mechanisms every snapshottable component needs, without knowing
//! anything about the components themselves.
//!
//! - [`StateHasher`] — a byte-stable FNV-1a stream over architectural
//!   state. Components feed their fields through typed `write_*` calls;
//!   two states are considered identical iff their streams are identical.
//!   Section tags delimit components so a mismatch is attributable.
//! - [`ForkCtx`] / [`SharedFork`] — pointer-identity remapping of shared
//!   handles (`Arc<RegFile>`, `Arc<Mutex<GroupState>>`, …). When a Soc is
//!   forked, every `Arc` that was shared between two components (or
//!   between a component and an external driver) must map to ONE new
//!   `Arc` shared the same way; `ForkCtx` memoises the mapping by source
//!   pointer so sharing topology is preserved regardless of visit order.
//! - [`CowVec`] — copy-on-write vector for the large stat arrays
//!   (latency histograms, per-window series), so forking N runs from one
//!   snapshot does not copy N × the warm-up history until a fork writes.
//!
//! [`SnapshotError`] is the common error type for fallible snapshot and
//! fork operations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod typed;
pub mod wire;

pub use typed::{FieldKind, FieldSpan, TypedSnapshot};
pub use wire::{BlobStore, SnapDecodeError, SnapReader, SnapshotBlob};

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, Index, IndexMut};
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with FNV-1a 64 starting from the offset basis.
///
/// The same function the serve-side result cache uses; exposed here so
/// snapshot fingerprints and cache keys share one definition.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A byte-stable FNV-1a 64 stream over architectural state.
///
/// Every `write_*` method folds a fixed little-endian encoding of its
/// argument, so the fingerprint is a pure function of the value sequence
/// — independent of platform, allocator, or pointer identity. Variable
/// length payloads (`write_str`, `write_bytes`) are length-prefixed so
/// the stream is prefix-free: `("ab", "c")` and `("a", "bc")` hash
/// differently.
///
/// Components open a [`section`](Self::section) before writing their
/// fields; the tag is folded into the stream, so two states only match
/// when the same components contributed in the same order.
#[derive(Debug, Clone)]
pub struct StateHasher {
    hash: u64,
    bytes: u64,
    record: Option<Vec<u8>>,
    typed: Option<Vec<FieldSpan>>,
}

impl Default for StateHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StateHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StateHasher {
            hash: FNV_OFFSET,
            bytes: 0,
            record: None,
            typed: None,
        }
    }

    /// A hasher that additionally captures every folded byte, so the
    /// hash stream doubles as a serialization wire format: the recorded
    /// bytes replayed through a [`SnapReader`] reconstruct exactly the
    /// state that produced this fingerprint.
    pub fn recording() -> Self {
        StateHasher {
            hash: FNV_OFFSET,
            bytes: 0,
            record: Some(Vec::new()),
            typed: None,
        }
    }

    /// A recording hasher that additionally tracks which byte spans came
    /// from the semantic writers ([`write_cycle`](Self::write_cycle),
    /// `write_counter_*`). The captured [`TypedSnapshot`] supports the
    /// steady-state leap algebra: time-rebased fingerprint keys,
    /// period-delta verification and `×k` delta application.
    pub fn typed_recording() -> Self {
        StateHasher {
            hash: FNV_OFFSET,
            bytes: 0,
            record: Some(Vec::new()),
            typed: Some(Vec::new()),
        }
    }

    /// The bytes captured so far (empty unless built with
    /// [`StateHasher::recording`]).
    pub fn take_bytes(self) -> Vec<u8> {
        self.record.unwrap_or_default()
    }

    /// Consumes a [`StateHasher::typed_recording`] hasher into the
    /// captured byte stream plus its semantic field map.
    pub fn take_typed(self) -> TypedSnapshot {
        TypedSnapshot {
            bytes: self.record.unwrap_or_default(),
            fields: self.typed.unwrap_or_default(),
        }
    }

    /// Marks the next `len` bytes as one semantic field (typed mode
    /// only; a no-op in hash/record modes).
    fn mark(&mut self, kind: FieldKind, len: usize) {
        if let Some(fields) = &mut self.typed {
            let offset = self.record.as_ref().map_or(0, Vec::len);
            fields.push(FieldSpan { kind, offset, len });
        }
    }

    /// Folds raw bytes without a length prefix (building block for the
    /// typed writers; prefer those or [`write_bytes`](Self::write_bytes)).
    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self.bytes += bytes.len() as u64;
        if let Some(buf) = &mut self.record {
            buf.extend_from_slice(bytes);
        }
    }

    /// Opens a named section; fold the tag so component order matters.
    pub fn section(&mut self, tag: &str) {
        self.write_str(tag);
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.fold(&[v]);
    }

    /// Writes a `u16` as little-endian bytes.
    pub fn write_u16(&mut self, v: u16) {
        self.fold(&v.to_le_bytes());
    }

    /// Writes a `u32` as little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.fold(&v.to_le_bytes());
    }

    /// Writes a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.fold(&v.to_le_bytes());
    }

    /// Writes a `u128` as little-endian bytes.
    pub fn write_u128(&mut self, v: u128) {
        self.fold(&v.to_le_bytes());
    }

    /// Writes a `usize` widened to `u64` (byte-stable across platforms).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Writes an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes an absolute cycle stamp. Encodes exactly like
    /// [`write_u64`](Self::write_u64); in typed mode the span is marked
    /// [`FieldKind::Cycle`] so the leap algebra can rebase it against the
    /// snapshot boundary and advance it by whole periods.
    pub fn write_cycle(&mut self, v: u64) {
        self.mark(FieldKind::Cycle, 8);
        self.write_u64(v);
    }

    /// Writes a monotonically accumulating `u64` counter (bytes, txns,
    /// stall cycles). Encodes exactly like [`write_u64`](Self::write_u64).
    pub fn write_counter_u64(&mut self, v: u64) {
        self.mark(FieldKind::CounterU64, 8);
        self.write_u64(v);
    }

    /// Writes a `u32` counter that accumulates with *wrapping* arithmetic
    /// (arena slot generations). Encodes exactly like
    /// [`write_u32`](Self::write_u32).
    pub fn write_counter_u32(&mut self, v: u32) {
        self.mark(FieldKind::CounterU32, 4);
        self.write_u32(v);
    }

    /// Writes a `u32` counter that accumulates with *saturating*
    /// arithmetic (register-file mirrors of wider counters). Encodes
    /// exactly like [`write_u32`](Self::write_u32).
    pub fn write_counter_u32_sat(&mut self, v: u32) {
        self.mark(FieldKind::CounterU32Sat, 4);
        self.write_u32(v);
    }

    /// Writes a monotonically accumulating `u128` counter (latency
    /// sums). Encodes exactly like [`write_u128`](Self::write_u128).
    pub fn write_counter_u128(&mut self, v: u128) {
        self.mark(FieldKind::CounterU128, 16);
        self.write_u128(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Writes a length-prefixed byte slice.
    pub fn write_bytes(&mut self, b: &[u8]) {
        self.write_u64(b.len() as u64);
        self.fold(b);
    }

    /// The current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.hash
    }

    /// Total bytes folded so far — a cheap stream-length cross-check.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// Errors from snapshot capture and fork operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The Soc was not at a quiesced boundary: transactions were still in
    /// flight, so calendar/pipeline state would have to be serialised.
    NotQuiesced {
        /// Number of transactions still live in the arena.
        live_txns: usize,
    },
    /// A component holds state that cannot be forked deterministically
    /// (e.g. interrupt closures, shared trace logs).
    Unforkable {
        /// The `label()` of the offending component.
        label: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::NotQuiesced { live_txns } => write!(
                f,
                "soc is not quiesced: {live_txns} transaction(s) still in flight"
            ),
            SnapshotError::Unforkable { label } => {
                write!(f, "component {label:?} cannot be forked")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Deep-copies a shared handle's payload for a forked run.
///
/// Implemented by the types that live behind `Arc`s shared between
/// components (register files, aggregate budget state). [`ForkCtx`]
/// calls `fork_value` at most once per source `Arc` and reuses the
/// result, so sharing topology survives the fork.
pub trait SharedFork {
    /// A deep copy carrying the current payload.
    fn fork_value(&self) -> Self;
}

impl<T: Clone> SharedFork for Mutex<T> {
    fn fork_value(&self) -> Self {
        Mutex::new(self.lock().expect("poisoned shared state").clone())
    }
}

/// Pointer-identity remapping of shared `Arc` handles during a fork.
///
/// Forking a Soc must preserve its sharing topology: a `RegFile` shared
/// between a regulator and an external driver handle must come out as
/// ONE new `RegFile` shared the same way — not two independent copies.
/// `ForkCtx` memoises `source Arc pointer → forked Arc`, so every holder
/// of the same source handle receives the same forked handle, no matter
/// in which order the holders are visited (soc-internal components
/// first, external drivers later, or interleaved).
#[derive(Default)]
pub struct ForkCtx {
    map: HashMap<usize, Arc<dyn Any + Send + Sync>>,
}

impl fmt::Debug for ForkCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForkCtx")
            .field("remapped", &self.map.len())
            .finish()
    }
}

impl ForkCtx {
    /// An empty context for one fork operation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the forked counterpart of `arc`, deep-copying the payload
    /// on first sight and reusing the memoised copy afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the same source pointer was previously forked at a
    /// different type (cannot happen through safe use, since the key is
    /// the typed `Arc`'s address).
    pub fn fork_arc<T>(&mut self, arc: &Arc<T>) -> Arc<T>
    where
        T: SharedFork + Any + Send + Sync,
    {
        let key = Arc::as_ptr(arc) as usize;
        if let Some(hit) = self.map.get(&key) {
            return hit
                .clone()
                .downcast::<T>()
                .expect("ForkCtx: shared handle remapped at a different type");
        }
        let forked = Arc::new(arc.fork_value());
        self.map
            .insert(key, forked.clone() as Arc<dyn Any + Send + Sync>);
        forked
    }

    /// Number of distinct shared handles remapped so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no handle has been remapped yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A copy-on-write vector: clones of a `CowVec` share one allocation
/// until one of them writes.
///
/// Used for the large stat arrays (latency histograms, per-window
/// series) so that forking N runs from one warm snapshot shares the
/// warm-up history instead of copying it N times. Reads go through
/// `Deref<Target = [T]>`; writes go through [`make_mut`](Self::make_mut)
/// or `IndexMut`, which clone the allocation only while it is shared.
#[derive(Debug, Clone)]
pub struct CowVec<T> {
    inner: Arc<Vec<T>>,
}

impl<T> CowVec<T> {
    /// Wraps an owned vector.
    pub fn new(v: Vec<T>) -> Self {
        CowVec { inner: Arc::new(v) }
    }

    /// True when another clone currently shares the allocation.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.inner) > 1
    }
}

impl<T: Clone> CowVec<T> {
    /// Mutable access to the underlying vector, cloning the allocation
    /// first if it is shared.
    pub fn make_mut(&mut self) -> &mut Vec<T> {
        Arc::make_mut(&mut self.inner)
    }

    /// Appends an element (copy-on-write).
    pub fn push(&mut self, v: T) {
        self.make_mut().push(v);
    }
}

impl<T> Default for CowVec<T> {
    fn default() -> Self {
        CowVec::new(Vec::new())
    }
}

impl<T> Deref for CowVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.inner
    }
}

impl<T, I: std::slice::SliceIndex<[T]>> Index<I> for CowVec<T> {
    type Output = I::Output;
    fn index(&self, i: I) -> &I::Output {
        &self.inner[i]
    }
}

impl<T: Clone> IndexMut<usize> for CowVec<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.make_mut()[i]
    }
}

impl<T: PartialEq> PartialEq for CowVec<T> {
    fn eq(&self, other: &Self) -> bool {
        *self.inner == *other.inner
    }
}

impl<T: Eq> Eq for CowVec<T> {}

impl<T> From<Vec<T>> for CowVec<T> {
    fn from(v: Vec<T>) -> Self {
        CowVec::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hasher_is_prefix_free() {
        let mut a = StateHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StateHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        assert_eq!(a.bytes_written(), b.bytes_written());
    }

    #[test]
    fn hasher_typed_writes_are_stable() {
        let mut h = StateHasher::new();
        h.section("test");
        h.write_u8(1);
        h.write_u16(2);
        h.write_u32(3);
        h.write_u64(4);
        h.write_u128(5);
        h.write_usize(6);
        h.write_bool(true);
        h.write_f64(1.5);
        // Pinned digest: any encoding change must bump SNAPSHOT_VERSION.
        let again = {
            let mut h2 = StateHasher::new();
            h2.section("test");
            h2.write_u8(1);
            h2.write_u16(2);
            h2.write_u32(3);
            h2.write_u64(4);
            h2.write_u128(5);
            h2.write_usize(6);
            h2.write_bool(true);
            h2.write_f64(1.5);
            h2.finish()
        };
        assert_eq!(h.finish(), again);
        assert_ne!(h.finish(), StateHasher::new().finish());
    }

    #[test]
    fn fork_ctx_preserves_sharing_topology() {
        let shared: Arc<Mutex<u64>> = Arc::new(Mutex::new(7));
        let alias = shared.clone();
        let mut ctx = ForkCtx::new();
        let f1 = ctx.fork_arc(&shared);
        let f2 = ctx.fork_arc(&alias);
        // Both holders of the same source Arc get the SAME forked Arc.
        assert!(Arc::ptr_eq(&f1, &f2));
        assert_eq!(ctx.len(), 1);
        // The fork is a deep copy: mutating it does not touch the source.
        *f1.lock().unwrap() = 99;
        assert_eq!(*shared.lock().unwrap(), 7);
        assert_eq!(*f2.lock().unwrap(), 99);
    }

    #[test]
    fn fork_ctx_distinct_sources_stay_distinct() {
        let a: Arc<Mutex<u64>> = Arc::new(Mutex::new(1));
        let b: Arc<Mutex<u64>> = Arc::new(Mutex::new(2));
        let mut ctx = ForkCtx::new();
        let fa = ctx.fork_arc(&a);
        let fb = ctx.fork_arc(&b);
        assert!(!Arc::ptr_eq(&fa, &fb));
        assert_eq!(ctx.len(), 2);
    }

    #[test]
    fn cow_vec_shares_until_write() {
        let mut a = CowVec::new(vec![1u64, 2, 3]);
        let b = a.clone();
        assert!(a.is_shared());
        a[1] = 20;
        assert!(!a.is_shared());
        assert_eq!(&a[..], &[1, 20, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn cow_vec_push_and_eq() {
        let mut a: CowVec<u32> = CowVec::default();
        a.push(5);
        let b = CowVec::new(vec![5]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn snapshot_error_display() {
        let e = SnapshotError::NotQuiesced { live_txns: 3 };
        assert!(e.to_string().contains("3 transaction"));
        let e = SnapshotError::Unforkable {
            label: "irq".into(),
        };
        assert!(e.to_string().contains("irq"));
    }
}
