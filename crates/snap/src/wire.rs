//! Persistent snapshot wire format.
//!
//! The [`StateHasher`](crate::StateHasher) stream already defines a
//! canonical, platform-stable byte order over architectural state; this
//! module makes that stream durable:
//!
//! - [`SnapReader`] — the decoding mirror of the hasher's typed
//!   `write_*` calls, with bounds-checked reads and diagnostic errors
//!   ([`SnapDecodeError`]) instead of panics.
//! - [`SnapshotBlob`] — a versioned, checksummed container carrying a
//!   recorded state stream plus the scenario recipe that rebuilds the
//!   structural skeleton the stream is loaded into.
//! - [`BlobStore`] — a content-addressed on-disk store for encoded
//!   blobs, with a logical-name index so warm boundaries can be looked
//!   up by recipe key.

use crate::fnv64;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes opening every encoded [`SnapshotBlob`].
pub const BLOB_MAGIC: &[u8; 8] = b"FGQOSNAP";

/// Version of the blob *container* layout (magic/header/checksum). The
/// version of the state stream inside is carried separately as
/// [`SnapshotBlob::snapshot_version`].
pub const BLOB_CONTAINER_VERSION: u32 = 1;

/// Errors from decoding a snapshot stream or blob container.
///
/// Every variant is diagnostic: corrupt or incompatible input must
/// surface as one of these, never as a panic or silently wrong state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapDecodeError {
    /// The input ended before a field could be read in full.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Byte offset at which the read started.
        at: usize,
    },
    /// The blob does not start with [`BLOB_MAGIC`].
    BadMagic,
    /// The blob container layout version is not understood.
    ContainerVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The whole-blob checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// The state stream was written by an incompatible snapshot version.
    Version {
        /// Version found in the stream.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// A component section tag did not match the component being loaded
    /// (stream and skeleton disagree on structure).
    SectionMismatch {
        /// Tag the loader expected.
        expected: String,
        /// Tag found in the stream.
        found: String,
    },
    /// A field held a value outside its valid encoding (e.g. a bool
    /// byte that is neither 0 nor 1) or inconsistent with the skeleton.
    BadValue {
        /// Description of the offending field.
        what: String,
        /// Byte offset of the field.
        at: usize,
    },
    /// The stream contains state for a component kind that does not
    /// support loading.
    Unsupported {
        /// The component's label.
        component: String,
    },
    /// The state loaded cleanly but its recomputed fingerprint differs
    /// from the one recorded when the snapshot was taken.
    FingerprintMismatch {
        /// Fingerprint recorded in the blob.
        expected: u64,
        /// Fingerprint recomputed from the loaded state.
        found: u64,
    },
    /// The scenario recipe embedded in the blob failed to parse or
    /// build.
    Scenario {
        /// The parser/builder diagnostic.
        message: String,
    },
    /// Decoding finished with unread bytes left in the stream.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
}

impl SnapDecodeError {
    /// Shorthand for [`SnapDecodeError::Unsupported`].
    pub fn unsupported(component: impl Into<String>) -> Self {
        SnapDecodeError::Unsupported {
            component: component.into(),
        }
    }
}

impl fmt::Display for SnapDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapDecodeError::Truncated { what, at } => {
                write!(f, "snapshot stream truncated reading {what} at byte {at}")
            }
            SnapDecodeError::BadMagic => write!(f, "not a snapshot blob (bad magic)"),
            SnapDecodeError::ContainerVersion { found } => {
                write!(
                    f,
                    "unsupported blob container version {found} (expected {BLOB_CONTAINER_VERSION})"
                )
            }
            SnapDecodeError::ChecksumMismatch { expected, found } => write!(
                f,
                "blob checksum mismatch: stored {expected:#018x}, computed {found:#018x}"
            ),
            SnapDecodeError::Version { found, expected } => write!(
                f,
                "snapshot stream version {found} incompatible with supported version {expected}"
            ),
            SnapDecodeError::SectionMismatch { expected, found } => write!(
                f,
                "snapshot section mismatch: expected {expected:?}, found {found:?}"
            ),
            SnapDecodeError::BadValue { what, at } => {
                write!(f, "invalid snapshot field at byte {at}: {what}")
            }
            SnapDecodeError::Unsupported { component } => {
                write!(f, "component {component:?} does not support state loading")
            }
            SnapDecodeError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint mismatch: blob records {expected:#018x}, \
                 loaded state hashes to {found:#018x}"
            ),
            SnapDecodeError::Scenario { message } => {
                write!(f, "embedded scenario recipe rejected: {message}")
            }
            SnapDecodeError::TrailingBytes { remaining } => {
                write!(f, "snapshot stream has {remaining} trailing byte(s)")
            }
        }
    }
}

impl std::error::Error for SnapDecodeError {}

/// Bounds-checked reader over a recorded state stream.
///
/// Each `read_*` method mirrors the corresponding
/// [`StateHasher`](crate::StateHasher) `write_*` encoding, so a stream
/// captured with [`StateHasher::recording`](crate::StateHasher::recording)
/// decodes field-for-field in the same order it was written.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a byte stream for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current byte offset into the stream.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapDecodeError> {
        let at = self.pos;
        let end = at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapDecodeError::Truncated { what, at })?;
        self.pos = end;
        Ok(&self.buf[at..end])
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, what: &'static str) -> Result<u8, SnapDecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self, what: &'static str) -> Result<u16, SnapDecodeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self, what: &'static str) -> Result<u32, SnapDecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, what: &'static str) -> Result<u64, SnapDecodeError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `u128`.
    pub fn read_u128(&mut self, what: &'static str) -> Result<u128, SnapDecodeError> {
        let b = self.take(16, what)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// Reads a `usize` written as a widened `u64`.
    pub fn read_usize(&mut self, what: &'static str) -> Result<usize, SnapDecodeError> {
        let at = self.pos;
        let v = self.read_u64(what)?;
        usize::try_from(v).map_err(|_| SnapDecodeError::BadValue {
            what: format!("{what}: {v} exceeds this platform's usize"),
            at,
        })
    }

    /// Reads a bool byte, rejecting anything but 0 or 1.
    pub fn read_bool(&mut self, what: &'static str) -> Result<bool, SnapDecodeError> {
        let at = self.pos;
        match self.read_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapDecodeError::BadValue {
                what: format!("{what}: bool byte {v}"),
                at,
            }),
        }
    }

    /// Reads an `f64` stored by bit pattern.
    pub fn read_f64(&mut self, what: &'static str) -> Result<f64, SnapDecodeError> {
        Ok(f64::from_bits(self.read_u64(what)?))
    }

    /// Reads a length-prefixed byte slice.
    pub fn read_byte_slice(&mut self, what: &'static str) -> Result<&'a [u8], SnapDecodeError> {
        let len = self.read_usize(what)?;
        self.take(len, what)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self, what: &'static str) -> Result<String, SnapDecodeError> {
        let at = self.pos;
        let b = self.read_byte_slice(what)?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapDecodeError::BadValue {
            what: format!("{what}: invalid UTF-8"),
            at,
        })
    }

    /// Reads a section tag and verifies it matches `tag`.
    pub fn section(&mut self, tag: &str) -> Result<(), SnapDecodeError> {
        let found = self.read_str("section tag")?;
        if found == tag {
            Ok(())
        } else {
            Err(SnapDecodeError::SectionMismatch {
                expected: tag.to_string(),
                found,
            })
        }
    }

    /// Fails unless the whole stream has been consumed.
    pub fn expect_end(&self) -> Result<(), SnapDecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapDecodeError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

/// A durable snapshot: the recorded state stream plus the scenario
/// recipe that rebuilds the structural skeleton it loads into.
///
/// Encoded layout (all integers little-endian):
///
/// ```text
/// magic              8 bytes  "FGQOSNAP"
/// container version  u32
/// snapshot version   u32      (version of the state stream encoding)
/// fingerprint        u64      (FNV-1a digest of the state stream)
/// cycle              u64      (boundary cycle of the snapshot)
/// scenario length    u64      + that many UTF-8 bytes
/// state length       u64      + that many stream bytes
/// checksum           u64      (fnv64 of every preceding byte)
/// ```
///
/// The trailing checksum catches truncation and bit corruption before
/// any state is interpreted; the fingerprint is re-verified after the
/// state is loaded, so a blob can never silently restore wrong state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotBlob {
    /// Version of the state stream encoding (the simulator's
    /// `SNAPSHOT_VERSION` at capture time).
    pub snapshot_version: u32,
    /// FNV-1a fingerprint of the state stream.
    pub fingerprint: u64,
    /// Boundary cycle the snapshot was taken at.
    pub cycle: u64,
    /// Scenario text that rebuilds the structural skeleton.
    pub scenario: String,
    /// The recorded state stream.
    pub state: Vec<u8>,
}

impl SnapshotBlob {
    /// Serializes the blob to its on-disk/on-wire byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(8 + 4 + 4 + 8 + 8 + 16 + self.scenario.len() + self.state.len() + 8);
        out.extend_from_slice(BLOB_MAGIC);
        out.extend_from_slice(&BLOB_CONTAINER_VERSION.to_le_bytes());
        out.extend_from_slice(&self.snapshot_version.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.cycle.to_le_bytes());
        out.extend_from_slice(&(self.scenario.len() as u64).to_le_bytes());
        out.extend_from_slice(self.scenario.as_bytes());
        out.extend_from_slice(&(self.state.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.state);
        let sum = fnv64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes and integrity-checks an encoded blob.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic [`SnapDecodeError`] on bad magic, an unknown
    /// container version, truncation, or a checksum mismatch. The state
    /// stream itself is *not* interpreted here.
    pub fn decode(bytes: &[u8]) -> Result<SnapshotBlob, SnapDecodeError> {
        if bytes.len() < 8 || &bytes[..8] != BLOB_MAGIC {
            return Err(SnapDecodeError::BadMagic);
        }
        if bytes.len() < 8 + 8 {
            return Err(SnapDecodeError::Truncated {
                what: "blob trailer",
                at: bytes.len(),
            });
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(trailer);
        let expected = u64::from_le_bytes(sum);
        let found = fnv64(payload);
        if expected != found {
            return Err(SnapDecodeError::ChecksumMismatch { expected, found });
        }
        let mut r = SnapReader::new(&payload[8..]);
        let container = r.read_u32("container version")?;
        if container != BLOB_CONTAINER_VERSION {
            return Err(SnapDecodeError::ContainerVersion { found: container });
        }
        let snapshot_version = r.read_u32("snapshot version")?;
        let fingerprint = r.read_u64("fingerprint")?;
        let cycle = r.read_u64("cycle")?;
        let scenario = r.read_str("scenario recipe")?;
        let state = r.read_byte_slice("state stream")?.to_vec();
        r.expect_end()?;
        Ok(SnapshotBlob {
            snapshot_version,
            fingerprint,
            cycle,
            scenario,
            state,
        })
    }

    /// The content key (hex FNV-1a digest) of an encoded blob.
    pub fn content_key(encoded: &[u8]) -> String {
        format!("{:016x}", fnv64(encoded))
    }
}

fn valid_key(key: &str) -> bool {
    !key.is_empty() && key.len() <= 64 && key.bytes().all(|b| b.is_ascii_hexdigit())
}

/// Content-addressed on-disk store for encoded snapshot blobs.
///
/// Objects live under `<dir>/objects/<fnv64-hex>.blob`; writes go
/// through a temp file and an atomic rename, so concurrent workers can
/// share one store directory without coordination (identical content
/// maps to the identical object file). A separate `<dir>/index/`
/// namespace maps logical warm-boundary keys to content keys.
#[derive(Debug, Clone)]
pub struct BlobStore {
    dir: PathBuf,
}

impl BlobStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory tree.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<BlobStore> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("objects"))?;
        fs::create_dir_all(dir.join("index"))?;
        Ok(BlobStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn object_path(&self, key: &str) -> PathBuf {
        self.dir.join("objects").join(format!("{key}.blob"))
    }

    fn index_path(&self, name: &str) -> PathBuf {
        self.dir.join("index").join(format!("{name}.ref"))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, path)
    }

    /// Stores encoded blob bytes, returning their content key. Storing
    /// identical bytes twice is a cheap no-op.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn put(&self, encoded: &[u8]) -> io::Result<String> {
        let key = SnapshotBlob::content_key(encoded);
        let path = self.object_path(&key);
        if !path.exists() {
            self.write_atomic(&path, encoded)?;
        }
        Ok(key)
    }

    /// Loads the encoded blob stored under `key`, verifying the content
    /// digest on the way in. Returns `Ok(None)` when the key is absent.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the stored bytes no longer match the
    /// key (on-disk corruption), or other filesystem errors.
    pub fn get(&self, key: &str) -> io::Result<Option<Vec<u8>>> {
        if !valid_key(key) {
            return Ok(None);
        }
        let path = self.object_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let actual = SnapshotBlob::content_key(&bytes);
        if actual != key {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("blob {key} corrupt on disk: content hashes to {actual}"),
            ));
        }
        Ok(Some(bytes))
    }

    /// Maps a logical name (a hex recipe key) to a content key.
    ///
    /// # Errors
    ///
    /// Rejects non-hex names with `InvalidInput`; propagates filesystem
    /// errors.
    pub fn link(&self, name: &str, key: &str) -> io::Result<()> {
        if !valid_key(name) || !valid_key(key) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "blob store names and keys must be short hex strings",
            ));
        }
        self.write_atomic(&self.index_path(name), key.as_bytes())
    }

    /// Resolves a logical name to its content key, if linked.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than absence.
    pub fn resolve(&self, name: &str) -> io::Result<Option<String>> {
        if !valid_key(name) {
            return Ok(None);
        }
        match fs::read_to_string(self.index_path(name)) {
            Ok(s) => {
                let key = s.trim().to_string();
                Ok(valid_key(&key).then_some(key))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Convenience: store encoded bytes and link them under `name`.
    ///
    /// # Errors
    ///
    /// Propagates [`BlobStore::put`] and [`BlobStore::link`] errors.
    pub fn put_named(&self, name: &str, encoded: &[u8]) -> io::Result<String> {
        let key = self.put(encoded)?;
        self.link(name, &key)?;
        Ok(key)
    }

    /// Convenience: resolve `name` and load its blob bytes.
    ///
    /// # Errors
    ///
    /// Propagates [`BlobStore::resolve`] and [`BlobStore::get`] errors.
    pub fn get_named(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match self.resolve(name)? {
            Some(key) => self.get(&key),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateHasher;

    fn sample_blob() -> SnapshotBlob {
        SnapshotBlob {
            snapshot_version: 1,
            fingerprint: 0x1234_5678_9abc_def0,
            cycle: 60_000_000,
            scenario: "clock_mhz 1000\n[master cpu]\nkind cpu\n".to_string(),
            state: vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
        }
    }

    #[test]
    fn recorded_stream_decodes_field_for_field() {
        let mut h = StateHasher::recording();
        h.section("demo");
        h.write_u8(7);
        h.write_u16(300);
        h.write_u32(70_000);
        h.write_u64(1 << 40);
        h.write_u128(1 << 80);
        h.write_usize(42);
        h.write_bool(true);
        h.write_f64(2.5);
        h.write_str("tail");
        let hash = h.finish();
        let bytes = h.take_bytes();
        assert_eq!(bytes.len() as u64, {
            let mut plain = StateHasher::new();
            plain.section("demo");
            plain.write_u8(7);
            plain.write_u16(300);
            plain.write_u32(70_000);
            plain.write_u64(1 << 40);
            plain.write_u128(1 << 80);
            plain.write_usize(42);
            plain.write_bool(true);
            plain.write_f64(2.5);
            plain.write_str("tail");
            assert_eq!(plain.finish(), hash);
            plain.bytes_written()
        });
        // The recorded stream hashes to the same fingerprint.
        assert_eq!(crate::fnv64(&bytes), hash);

        let mut r = SnapReader::new(&bytes);
        r.section("demo").unwrap();
        assert_eq!(r.read_u8("a").unwrap(), 7);
        assert_eq!(r.read_u16("b").unwrap(), 300);
        assert_eq!(r.read_u32("c").unwrap(), 70_000);
        assert_eq!(r.read_u64("d").unwrap(), 1 << 40);
        assert_eq!(r.read_u128("e").unwrap(), 1 << 80);
        assert_eq!(r.read_usize("f").unwrap(), 42);
        assert!(r.read_bool("g").unwrap());
        assert_eq!(r.read_f64("h").unwrap(), 2.5);
        assert_eq!(r.read_str("i").unwrap(), "tail");
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_reports_truncation_not_panic() {
        let mut r = SnapReader::new(&[1, 2, 3]);
        let e = r.read_u64("field").unwrap_err();
        assert!(matches!(
            e,
            SnapDecodeError::Truncated { what: "field", .. }
        ));
        // A huge length prefix must not over-allocate or panic.
        let mut h = StateHasher::recording();
        h.write_u64(u64::MAX);
        let bytes = h.take_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.read_byte_slice("blob").is_err());
    }

    #[test]
    fn reader_rejects_bad_bool_and_section() {
        let mut h = StateHasher::recording();
        h.write_u8(2);
        let bytes = h.take_bytes();
        let e = SnapReader::new(&bytes).read_bool("flag").unwrap_err();
        assert!(matches!(e, SnapDecodeError::BadValue { .. }));

        let mut h = StateHasher::recording();
        h.section("alpha");
        let bytes = h.take_bytes();
        let e = SnapReader::new(&bytes).section("beta").unwrap_err();
        match e {
            SnapDecodeError::SectionMismatch { expected, found } => {
                assert_eq!(expected, "beta");
                assert_eq!(found, "alpha");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn blob_roundtrip() {
        let blob = sample_blob();
        let enc = blob.encode();
        let dec = SnapshotBlob::decode(&enc).unwrap();
        assert_eq!(dec, blob);
    }

    #[test]
    fn blob_rejects_bad_magic_truncation_and_corruption() {
        let enc = sample_blob().encode();

        let mut bad = enc.clone();
        bad[0] ^= 0xff;
        assert_eq!(SnapshotBlob::decode(&bad), Err(SnapDecodeError::BadMagic));

        for cut in [0, 4, 12, enc.len() / 2, enc.len() - 1] {
            let e = SnapshotBlob::decode(&enc[..cut]).unwrap_err();
            assert!(
                matches!(
                    e,
                    SnapDecodeError::BadMagic
                        | SnapDecodeError::Truncated { .. }
                        | SnapDecodeError::ChecksumMismatch { .. }
                ),
                "cut {cut}: {e:?}"
            );
        }

        // Any flipped payload byte is caught by the trailer checksum.
        let mut bad = enc.clone();
        let mid = enc.len() / 2;
        bad[mid] ^= 0x01;
        assert!(matches!(
            SnapshotBlob::decode(&bad),
            Err(SnapDecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn blob_rejects_unknown_container_version() {
        let mut enc = sample_blob().encode();
        enc[8] = 99; // container version LE byte 0
                     // Re-seal the checksum so only the version check can fire.
        let n = enc.len();
        let sum = fnv64(&enc[..n - 8]);
        enc[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SnapshotBlob::decode(&enc),
            Err(SnapDecodeError::ContainerVersion { found: 99 })
        );
    }

    #[test]
    fn blob_store_roundtrip_and_index() {
        let dir = std::env::temp_dir().join(format!("fgqos-blob-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = BlobStore::open(&dir).unwrap();
        let enc = sample_blob().encode();
        let key = store.put(&enc).unwrap();
        assert_eq!(store.put(&enc).unwrap(), key);
        assert_eq!(store.get(&key).unwrap().unwrap(), enc);
        assert_eq!(store.get("00000000deadbeef").unwrap(), None);

        store.link("abcd1234", &key).unwrap();
        assert_eq!(store.resolve("abcd1234").unwrap().unwrap(), key);
        assert_eq!(store.get_named("abcd1234").unwrap().unwrap(), enc);
        assert_eq!(store.resolve("ffffffff").unwrap(), None);
        assert!(store.link("../escape", &key).is_err());

        // On-disk corruption is detected, not returned as data.
        let path = dir.join("objects").join(format!("{key}.blob"));
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        assert!(store.get(&key).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
