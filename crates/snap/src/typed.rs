//! Typed snapshot records: the algebra behind steady-state leaping.
//!
//! A [`TypedSnapshot`] is the recorded snapshot byte stream of a
//! quiesced machine plus a map of which byte spans hold *semantic*
//! fields — absolute cycle stamps and monotone counters — written
//! through the typed methods of
//! [`StateHasher`](crate::StateHasher). Everything outside those spans
//! is plain configuration/bounded state that must repeat byte-for-byte
//! for two boundaries to be the same machine state.
//!
//! Three operations make periodic steady states exploitable:
//!
//! * [`TypedSnapshot::rebased_key`] — a fingerprint that is invariant
//!   under time translation: cycle fields are folded relative to the
//!   boundary cycle and counter *values* are excluded (only their
//!   positions count). Two boundaries one period apart in a periodic
//!   steady state produce the same key.
//! * [`TypedSnapshot::lockstep_deltas`] — the hard check: given two
//!   records `earlier` (at cycle `c₁`) and `self` (at `c₂ = c₁ + P`),
//!   verifies that they differ *only* as a time translation — identical
//!   field structure, byte-identical plain spans, every cycle field
//!   either frozen or advanced by exactly `P` — and returns the
//!   per-period delta of every field.
//! * [`TypedSnapshot::leap`] — applies those deltas `k` more times in
//!   one step, producing the byte stream the machine would reach at
//!   `c₂ + k·P` by simulating — without simulating.
//!
//! The deltas are applied with each counter's own arithmetic (plain,
//! wrapping-`u32`, saturating-`u32`), so the merged stream is
//! bit-identical to the cycle-by-cycle run even across generation
//! wraparound or register-mirror saturation.

/// Semantic class of one typed field span in a snapshot stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// An absolute cycle stamp: either frozen (a past timestamp the
    /// machine no longer consults, or a `u64::MAX` "never" sentinel) or
    /// advancing in lockstep with the clock.
    Cycle,
    /// A monotone `u64` accumulator.
    CounterU64,
    /// A `u32` accumulator with wrapping arithmetic.
    CounterU32,
    /// A `u32` accumulator with saturating arithmetic.
    CounterU32Sat,
    /// A monotone `u128` accumulator.
    CounterU128,
}

/// One typed field: `len` bytes at `offset` in the recorded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpan {
    /// Semantic class of the span.
    pub kind: FieldKind,
    /// Byte offset into the recorded stream.
    pub offset: usize,
    /// Span length in bytes (fixed per kind).
    pub len: usize,
}

/// A recorded snapshot byte stream plus its semantic field map (see the
/// [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedSnapshot {
    /// The full recorded snapshot stream (loadable by a `SnapReader`).
    pub bytes: Vec<u8>,
    /// Typed spans in stream order; bytes outside them are plain.
    pub fields: Vec<FieldSpan>,
}

/// Per-period change of every typed field of a verified periodic pair,
/// in field order. Cycle fields carry `0` (frozen) or the period
/// (advancing); counters carry their per-period increment.
pub type FieldDeltas = Vec<u128>;

fn u64_at(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("span in bounds"))
}

fn u32_at(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("span in bounds"))
}

fn u128_at(bytes: &[u8], off: usize) -> u128 {
    u128::from_le_bytes(bytes[off..off + 16].try_into().expect("span in bounds"))
}

/// Incremental FNV-1a 64 fold (shared definition with [`crate::fnv64`]).
struct Fold(u64);

impl Fold {
    fn new() -> Self {
        Fold(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

impl TypedSnapshot {
    /// Value of field `i` widened to `u128`.
    fn value(&self, i: usize) -> u128 {
        let f = self.fields[i];
        match f.kind {
            FieldKind::Cycle | FieldKind::CounterU64 => u64_at(&self.bytes, f.offset) as u128,
            FieldKind::CounterU32 | FieldKind::CounterU32Sat => {
                u32_at(&self.bytes, f.offset) as u128
            }
            FieldKind::CounterU128 => u128_at(&self.bytes, f.offset),
        }
    }

    /// Time-translation-invariant fingerprint of this record.
    ///
    /// `base` is the boundary cycle the record was taken at; cycle
    /// fields fold as `v.saturating_sub(base)` so frozen past stamps
    /// collapse to 0 and advancing stamps fold as their lead over the
    /// clock. Counter values are excluded (their *positions* still
    /// shape the key through the kind tags). `wake_offsets` — the
    /// caller's per-component `next_activity − now` horizons — are
    /// folded in verbatim: trailing stamps (window starts) all rebase
    /// to 0, so the pending-wake structure is what distinguishes two
    /// different phases of the same window.
    pub fn rebased_key(&self, base: u64, wake_offsets: &[u64]) -> u64 {
        let mut h = Fold::new();
        let mut cursor = 0usize;
        for f in &self.fields {
            h.bytes(&self.bytes[cursor..f.offset]);
            h.bytes(&[f.kind as u8 + 1]);
            if f.kind == FieldKind::Cycle {
                let v = u64_at(&self.bytes, f.offset);
                // `u64::MAX` is the "never" sentinel — base-independent.
                h.u64(if v == u64::MAX {
                    v
                } else {
                    v.saturating_sub(base)
                });
            }
            cursor = f.offset + f.len;
        }
        h.bytes(&self.bytes[cursor..]);
        h.u64(wake_offsets.len() as u64);
        for &w in wake_offsets {
            h.u64(w);
        }
        h.0
    }

    /// Verifies that `self` (at `c₁ + period`) is exactly the time
    /// translation of `earlier` (at `c₁`) and returns every field's
    /// per-period delta; `None` means the pair is *not* periodic (any
    /// structural, plain-byte or cycle-stride mismatch).
    pub fn lockstep_deltas(&self, earlier: &TypedSnapshot, period: u64) -> Option<FieldDeltas> {
        if self.bytes.len() != earlier.bytes.len() || self.fields != earlier.fields || period == 0 {
            return None;
        }
        let mut deltas = Vec::with_capacity(self.fields.len());
        let mut cursor = 0usize;
        for (i, f) in self.fields.iter().enumerate() {
            if self.bytes[cursor..f.offset] != earlier.bytes[cursor..f.offset] {
                return None;
            }
            cursor = f.offset + f.len;
            let (v1, v2) = (earlier.value(i), self.value(i));
            let delta = match f.kind {
                FieldKind::Cycle => {
                    let d = v2.checked_sub(v1)?;
                    if d != 0 && d != period as u128 {
                        return None;
                    }
                    d
                }
                // Saturating mirrors only ever grow; a shrink means the
                // pair is not the same machine one period on.
                FieldKind::CounterU32Sat => v2.checked_sub(v1)?,
                FieldKind::CounterU32 => {
                    (u32_at(&self.bytes, f.offset).wrapping_sub(u32_at(&earlier.bytes, f.offset)))
                        as u128
                }
                FieldKind::CounterU64 => {
                    (u64_at(&self.bytes, f.offset).wrapping_sub(u64_at(&earlier.bytes, f.offset)))
                        as u128
                }
                FieldKind::CounterU128 => {
                    u128_at(&self.bytes, f.offset).wrapping_sub(u128_at(&earlier.bytes, f.offset))
                }
            };
            deltas.push(delta);
        }
        if self.bytes[cursor..] != earlier.bytes[cursor..] {
            return None;
        }
        Some(deltas)
    }

    /// Applies `deltas` (from [`lockstep_deltas`](Self::lockstep_deltas))
    /// `k` more times, returning the snapshot stream of the machine `k`
    /// periods after `self` — each field advanced with its own
    /// arithmetic, plain bytes untouched.
    pub fn leap(&self, deltas: &FieldDeltas, k: u64) -> Vec<u8> {
        assert_eq!(deltas.len(), self.fields.len(), "delta/field arity");
        let mut out = self.bytes.clone();
        for (f, &d) in self.fields.iter().zip(deltas) {
            match f.kind {
                FieldKind::Cycle | FieldKind::CounterU64 => {
                    let v = u64_at(&out, f.offset).wrapping_add((d as u64).wrapping_mul(k));
                    out[f.offset..f.offset + 8].copy_from_slice(&v.to_le_bytes());
                }
                FieldKind::CounterU32 => {
                    let v = u32_at(&out, f.offset).wrapping_add((d as u64).wrapping_mul(k) as u32);
                    out[f.offset..f.offset + 4].copy_from_slice(&v.to_le_bytes());
                }
                FieldKind::CounterU32Sat => {
                    let total = u32_at(&out, f.offset) as u128 + d * k as u128;
                    let v = total.min(u32::MAX as u128) as u32;
                    out[f.offset..f.offset + 4].copy_from_slice(&v.to_le_bytes());
                }
                FieldKind::CounterU128 => {
                    let v = u128_at(&out, f.offset).wrapping_add(d.wrapping_mul(k as u128));
                    out[f.offset..f.offset + 16].copy_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateHasher;

    /// A toy component at absolute cycle `now`: one config word, one
    /// advancing stamp, one frozen stamp, counters of every flavour.
    fn record(now: u64, bytes: u64, gens: u32, mirror: u32, sum: u128) -> TypedSnapshot {
        let mut h = StateHasher::typed_recording();
        h.section("toy");
        h.write_u64(0x00C0_FFEE); // config: plain
        h.write_cycle(now + 3); // advancing stamp (next wake)
        h.write_cycle(7); // frozen stamp (start-of-run)
        h.write_cycle(u64::MAX); // "never" sentinel
        h.write_counter_u64(bytes);
        h.write_counter_u32(gens);
        h.write_counter_u32_sat(mirror);
        h.write_counter_u128(sum);
        h.write_bool(true); // trailing plain
        h.take_typed()
    }

    #[test]
    fn typed_writes_encode_like_plain_writes() {
        let mut typed = StateHasher::recording();
        typed.section("x");
        typed.write_cycle(41);
        typed.write_counter_u64(42);
        typed.write_counter_u32(43);
        typed.write_counter_u32_sat(44);
        typed.write_counter_u128(45);
        let mut plain = StateHasher::recording();
        plain.section("x");
        plain.write_u64(41);
        plain.write_u64(42);
        plain.write_u32(43);
        plain.write_u32(44);
        plain.write_u128(45);
        assert_eq!(typed.finish(), plain.finish());
        assert_eq!(typed.bytes_written(), plain.bytes_written());
        assert_eq!(typed.take_bytes(), plain.take_bytes());
    }

    #[test]
    fn typed_mode_maps_spans_without_changing_bytes() {
        let a = record(1_000, 10, 2, 3, 100);
        let mut plain = StateHasher::recording();
        plain.section("toy");
        plain.write_u64(0x00C0_FFEE);
        plain.write_u64(1_003);
        plain.write_u64(7);
        plain.write_u64(u64::MAX);
        plain.write_u64(10);
        plain.write_u32(2);
        plain.write_u32(3);
        plain.write_u128(100);
        plain.write_bool(true);
        assert_eq!(a.bytes, plain.take_bytes());
        assert_eq!(a.fields.len(), 7);
    }

    #[test]
    fn rebased_key_is_translation_invariant() {
        let a = record(1_000, 10, 2, 3, 100);
        let b = record(9_000, 999, 77, u32::MAX, 12_345);
        // Same machine shape, any counter values, any boundary cycle.
        assert_eq!(
            a.rebased_key(1_000, &[3, 50]),
            b.rebased_key(9_000, &[3, 50])
        );
        // Pending-wake structure distinguishes window phases.
        assert_ne!(
            a.rebased_key(1_000, &[3, 50]),
            a.rebased_key(1_000, &[3, 51])
        );
        // A plain-byte change is a different machine.
        let mut c = record(1_000, 10, 2, 3, 100);
        let off = c.fields[0].offset - 8; // config word precedes first span
        c.bytes[off] ^= 1;
        assert_ne!(a.rebased_key(1_000, &[]), c.rebased_key(1_000, &[]));
    }

    #[test]
    fn lockstep_accepts_exact_translation_and_rejects_drift() {
        let p = 500u64;
        let a = record(1_000, 10, 2, 3, 100);
        let b = record(1_500, 16, 3, 5, 130);
        let deltas = b.lockstep_deltas(&a, p).expect("periodic pair");
        assert_eq!(deltas, vec![500, 0, 0, 6, 1, 2, 30]);
        // A cycle field advancing by anything but 0 or P is drift.
        let skew = record(1_499, 16, 3, 5, 130);
        assert!(skew.lockstep_deltas(&a, p).is_none());
        // Plain-byte mismatch rejects.
        let mut other = record(1_500, 16, 3, 5, 130);
        *other.bytes.last_mut().unwrap() ^= 1;
        assert!(other.lockstep_deltas(&a, p).is_none());
        // Structural mismatch rejects.
        let mut short = b.clone();
        short.fields.pop();
        assert!(short.lockstep_deltas(&a, p).is_none());
    }

    #[test]
    fn leap_matches_iterated_application() {
        let p = 500u64;
        let a = record(1_000, 10, 2, 3, 100);
        let b = record(1_500, 16, 3, 5, 130);
        let deltas = b.lockstep_deltas(&a, p).expect("periodic pair");
        let k = 7u64;
        let leaped = b.leap(&deltas, k);
        let manual = record(
            1_500 + k * p,
            16 + k * 6,
            3 + k as u32,
            5 + 2 * k as u32,
            130 + 30 * k as u128,
        );
        assert_eq!(leaped, manual.bytes);
    }

    #[test]
    fn leap_respects_counter_arithmetic() {
        // Wrapping u32 generations and saturating u32 mirror.
        let a = record(1_000, 0, u32::MAX - 1, u32::MAX - 3, 0);
        let b = record(1_500, 0, u32::MAX, u32::MAX - 1, 0);
        let deltas = b.lockstep_deltas(&a, 500).expect("periodic pair");
        let leaped = b.leap(&deltas, 3);
        let expect = record(3_000, 0, u32::MAX.wrapping_add(3), u32::MAX, 0);
        assert_eq!(leaped, expect.bytes);
    }

    #[test]
    fn leap_zero_periods_is_identity() {
        let b = record(1_500, 16, 3, 5, 130);
        let deltas = vec![0u128; b.fields.len()];
        assert_eq!(b.leap(&deltas, 0), b.bytes);
        let real = b
            .lockstep_deltas(&record(1_000, 10, 2, 3, 100), 500)
            .unwrap();
        assert_eq!(b.leap(&real, 0), b.bytes);
    }
}
