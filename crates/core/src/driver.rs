//! Software driver over the regulator register file.
//!
//! [`RegulatorDriver`] is the model of the paper's Linux kernel driver /
//! userspace tooling: everything it does goes through the same 32-bit
//! register interface the hardware exposes ([`RegFile`]), so the software
//! side never sees state the real driver could not.

use crate::regfile::{
    Reg, RegFile, CTRL_ENABLE, CTRL_RESET_STATS, CTRL_SPLIT_RW, STATUS_EXHAUSTED, STATUS_THROTTLED,
};
use fgqos_sim::time::{Bandwidth, Freq};
use fgqos_sim::ForkCtx;
use std::sync::Arc;

/// Snapshot of a port's telemetry, decoded from the register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegulatorTelemetry {
    /// Bytes accepted in the open window.
    pub window_bytes: u64,
    /// Transactions accepted in the open window.
    pub window_txns: u64,
    /// Lifetime accepted bytes since the last stats reset.
    pub total_bytes: u64,
    /// Lifetime accepted transactions since the last stats reset.
    pub total_txns: u64,
    /// Cycles spent throttled (handshake denied).
    pub stall_cycles: u64,
    /// Completed windows.
    pub windows: u64,
    /// Bytes of the last completed window.
    pub last_window_bytes: u64,
    /// Maximum bytes-over-budget seen in any completed window.
    pub max_overshoot: u64,
    /// Read bytes accepted in the open window.
    pub window_read_bytes: u64,
    /// Write bytes accepted in the open window.
    pub window_write_bytes: u64,
    /// Port currently throttled.
    pub throttled: bool,
    /// Budget ran out at least once since last acknowledged (sticky).
    pub exhausted: bool,
}

/// Typed, cloneable handle to one regulator's register block.
///
/// ```
/// use fgqos_core::prelude::*;
/// use fgqos_sim::time::{Bandwidth, Freq};
///
/// let (_regulator, driver) = TcRegulator::create(RegulatorConfig::default());
/// driver.set_period_cycles(2_000);
/// driver.set_bandwidth(Bandwidth::from_mib_per_s(512.0), Freq::ghz(1));
/// driver.set_enabled(true);
/// assert!(driver.enabled());
/// assert_eq!(driver.period_cycles(), 2_000);
/// ```
#[derive(Debug, Clone)]
pub struct RegulatorDriver {
    regs: Arc<RegFile>,
}

impl RegulatorDriver {
    /// Wraps a shared register block.
    pub fn new(regs: Arc<RegFile>) -> Self {
        RegulatorDriver { regs }
    }

    /// The underlying register block (raw access for tests/debug).
    pub fn regfile(&self) -> &Arc<RegFile> {
        &self.regs
    }

    /// Rebinds this driver to the register block `ctx` maps its block to
    /// — the software-side counterpart of a snapshot fork. Pass the same
    /// `ctx` used to fork the Soc (in any order) and the returned driver
    /// talks to the forked gate's MMIO, not the original's.
    pub fn forked(&self, ctx: &mut ForkCtx) -> RegulatorDriver {
        RegulatorDriver {
            regs: ctx.fork_arc(&self.regs),
        }
    }

    /// Enables or disables regulation (monitoring always runs).
    pub fn set_enabled(&self, enabled: bool) {
        if enabled {
            self.regs.set_bits(Reg::Ctrl, CTRL_ENABLE);
        } else {
            self.regs.clear_bits(Reg::Ctrl, CTRL_ENABLE);
        }
    }

    /// Whether regulation is enabled.
    pub fn enabled(&self) -> bool {
        self.regs.read(Reg::Ctrl) & CTRL_ENABLE != 0
    }

    /// Programs the replenishment window length (takes effect at the next
    /// window boundary).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn set_period_cycles(&self, cycles: u32) {
        assert!(cycles > 0, "regulation period must be non-zero");
        self.regs.sw_write(Reg::Period, cycles);
    }

    /// The programmed window length.
    pub fn period_cycles(&self) -> u32 {
        self.regs.read(Reg::Period)
    }

    /// Programs the per-window byte budget (takes effect at the next
    /// window boundary).
    pub fn set_budget_bytes(&self, bytes: u32) {
        self.regs.sw_write(Reg::Budget, bytes);
    }

    /// The programmed per-window byte budget.
    pub fn budget_bytes(&self) -> u32 {
        self.regs.read(Reg::Budget)
    }

    /// Programs the budget to sustain `bandwidth` given the *currently
    /// programmed* period and the SoC clock — the exact arithmetic the
    /// real driver performs (budget is clamped to the 32-bit register).
    pub fn set_bandwidth(&self, bandwidth: Bandwidth, freq: Freq) {
        let budget = bandwidth.to_window_budget(self.period_cycles() as u64, freq);
        self.set_budget_bytes(budget.min(u32::MAX as u64) as u32);
    }

    /// The bandwidth the programmed period/budget pair sustains.
    pub fn configured_bandwidth(&self, freq: Freq) -> Bandwidth {
        Bandwidth::from_bytes_over(
            self.budget_bytes() as u64,
            self.period_cycles() as u64,
            freq,
        )
    }

    /// Enables or disables split read/write regulation.
    pub fn set_split_enabled(&self, enabled: bool) {
        if enabled {
            self.regs.set_bits(Reg::Ctrl, CTRL_SPLIT_RW);
        } else {
            self.regs.clear_bits(Reg::Ctrl, CTRL_SPLIT_RW);
        }
    }

    /// Whether split read/write regulation is enabled.
    pub fn split_enabled(&self) -> bool {
        self.regs.read(Reg::Ctrl) & CTRL_SPLIT_RW != 0
    }

    /// Programs the read-channel per-window byte budget (split mode).
    pub fn set_read_budget_bytes(&self, bytes: u32) {
        self.regs.sw_write(Reg::BudgetRd, bytes);
    }

    /// Programs the write-channel per-window byte budget (split mode).
    pub fn set_write_budget_bytes(&self, bytes: u32) {
        self.regs.sw_write(Reg::BudgetWr, bytes);
    }

    /// The programmed read-channel budget.
    pub fn read_budget_bytes(&self) -> u32 {
        self.regs.read(Reg::BudgetRd)
    }

    /// The programmed write-channel budget.
    pub fn write_budget_bytes(&self) -> u32 {
        self.regs.read(Reg::BudgetWr)
    }

    /// Requests a telemetry counter reset (hardware performs it on its
    /// next cycle and self-clears the bit).
    pub fn reset_stats(&self) {
        self.regs.set_bits(Reg::Ctrl, CTRL_RESET_STATS);
    }

    /// Acknowledges (clears) the sticky `EXHAUSTED` status bit.
    pub fn clear_exhausted(&self) {
        self.regs.sw_write(Reg::Status, STATUS_EXHAUSTED);
    }

    /// Reads a full telemetry snapshot.
    pub fn telemetry(&self) -> RegulatorTelemetry {
        let status = self.regs.read(Reg::Status);
        RegulatorTelemetry {
            window_bytes: self.regs.read(Reg::WinBytes) as u64,
            window_txns: self.regs.read(Reg::WinTxns) as u64,
            total_bytes: self.regs.read64(Reg::TotalBytesLo, Reg::TotalBytesHi),
            total_txns: self.regs.read64(Reg::TotalTxnsLo, Reg::TotalTxnsHi),
            stall_cycles: self.regs.read64(Reg::StallLo, Reg::StallHi),
            windows: self.regs.read(Reg::Windows) as u64,
            last_window_bytes: self.regs.read(Reg::LastWinBytes) as u64,
            max_overshoot: self.regs.read(Reg::MaxOvershoot) as u64,
            window_read_bytes: self.regs.read(Reg::WinRdBytes) as u64,
            window_write_bytes: self.regs.read(Reg::WinWrBytes) as u64,
            throttled: status & STATUS_THROTTLED != 0,
            exhausted: status & STATUS_EXHAUSTED != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver() -> RegulatorDriver {
        RegulatorDriver::new(RegFile::shared())
    }

    #[test]
    fn enable_roundtrip() {
        let d = driver();
        assert!(!d.enabled());
        d.set_enabled(true);
        assert!(d.enabled());
        d.set_enabled(false);
        assert!(!d.enabled());
    }

    #[test]
    fn period_and_budget_roundtrip() {
        let d = driver();
        d.set_period_cycles(5_000);
        d.set_budget_bytes(64_000);
        assert_eq!(d.period_cycles(), 5_000);
        assert_eq!(d.budget_bytes(), 64_000);
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_rejected() {
        driver().set_period_cycles(0);
    }

    #[test]
    fn bandwidth_to_budget_arithmetic() {
        let d = driver();
        let freq = Freq::ghz(1);
        d.set_period_cycles(1_000); // 1 us window
        d.set_bandwidth(Bandwidth::from_bytes_per_s(2e9), freq);
        assert_eq!(d.budget_bytes(), 2_000);
        let back = d.configured_bandwidth(freq);
        assert!((back.bytes_per_s() - 2e9).abs() < 1.0);
    }

    #[test]
    fn bandwidth_budget_clamps_to_register_width() {
        let d = driver();
        d.set_period_cycles(u32::MAX);
        d.set_bandwidth(Bandwidth::from_bytes_per_s(1e18), Freq::ghz(1));
        assert_eq!(d.budget_bytes(), u32::MAX);
    }

    #[test]
    fn split_controls_roundtrip() {
        let d = driver();
        assert!(!d.split_enabled());
        d.set_split_enabled(true);
        assert!(d.split_enabled());
        d.set_read_budget_bytes(1_000);
        d.set_write_budget_bytes(2_000);
        assert_eq!(d.read_budget_bytes(), 1_000);
        assert_eq!(d.write_budget_bytes(), 2_000);
        d.set_split_enabled(false);
        assert!(!d.split_enabled());
    }

    #[test]
    fn telemetry_decodes_registers() {
        let d = driver();
        let rf = d.regfile();
        rf.write(Reg::WinBytes, 100);
        rf.write64(Reg::TotalBytesLo, Reg::TotalBytesHi, 1 << 40);
        rf.set_bits(Reg::Status, STATUS_THROTTLED);
        let t = d.telemetry();
        assert_eq!(t.window_bytes, 100);
        assert_eq!(t.total_bytes, 1 << 40);
        assert!(t.throttled);
        assert!(!t.exhausted);
    }
}
