//! Worst-case delay analysis for regulated systems.
//!
//! The point of window-based regulation is not the average: it is that a
//! *bound* on the interference becomes computable. This module derives a
//! conservative worst-case service bound for one critical request in a
//! SoC whose other masters are regulated by
//! [`TcRegulator`](crate::regulator::TcRegulator)s in conservative
//! charge-at-acceptance mode, and the integration tests validate that
//! simulated latencies never exceed it.
//!
//! ## The bound
//!
//! A critical request that arrives at its (otherwise empty) port must:
//!
//! 1. **Enter the shared DRAM queue.** The queue may be full; one slot
//!    frees per served transaction and round-robin grants the critical
//!    port within `N` frees: at most `N · t_txn` cycles.
//! 2. **Wait out the backlog.** Every interfering port can have at most
//!    `min(outstanding, fifo + queue)` transactions already admitted
//!    ahead of the critical request.
//! 3. **Tolerate FR-FCFS bypassing.** Between two served-oldest
//!    transactions, at most `row_hit_cap` younger row hits may bypass,
//!    so at most `cap · (backlog + 1)` extra transactions are served
//!    before the critical one.
//! 4. **Absorb refresh.** Every `t_refi` cycles the device blocks for
//!    `t_rfc`.
//!
//! Each transaction is charged its worst-case serial service time
//! (precharge + activate + CAS + data beats + worst bus turnaround);
//! bank parallelism, row hits and controller pipelining only make the
//! real system faster, so the bound is conservative by construction.
//! Regulation enters through the backlog term: without it, the
//! outstanding-transaction backlog is the only limit and the bound is
//! governed by queue capacity; with tighter budgets the *admission*
//! curve `(⌊Δ/P⌋+1)·Q` further caps how many bypass candidates can even
//! exist in a window — [`SystemModel::bypass_txns`] takes the smaller of
//! the two.

use fgqos_sim::axi::BEAT_BYTES;
use fgqos_sim::dram::DramConfig;

/// Analytical description of one interfering (regulated) port.
#[derive(Debug, Clone, Copy)]
pub struct PortModel {
    /// Regulation window in cycles.
    pub period_cycles: u64,
    /// Byte budget per window (conservative mode: a hard per-window cap).
    pub budget_bytes: u64,
    /// The port's outstanding-transaction limit.
    pub max_outstanding: u64,
    /// The port's transaction size in bytes.
    pub txn_bytes: u64,
}

impl PortModel {
    /// Models an *unregulated* interferer (no budget constraint: only
    /// its outstanding-transaction limit bounds it). Useful to bound a
    /// critical request in a mixed system where some co-runners are not
    /// behind regulators (e.g. a second critical port).
    pub fn unregulated(max_outstanding: u64, txn_bytes: u64) -> Self {
        PortModel {
            period_cycles: 1,
            budget_bytes: u64::MAX / 4,
            max_outstanding,
            txn_bytes,
        }
    }

    /// Transactions this port can have admitted-but-unserved at any
    /// instant (its backlog contribution), given the fabric depths.
    fn backlog_txns(&self, fifo_depth: u64, queue_capacity: u64) -> u64 {
        self.max_outstanding.min(fifo_depth + queue_capacity)
    }

    /// Transactions this port can admit during an interval of `delta`
    /// cycles under its window budget (the classic `(⌊Δ/P⌋+1)·Q` arrival
    /// curve of window-replenished regulators).
    pub fn admissions_during(&self, delta: u64) -> u64 {
        let windows = delta / self.period_cycles + 1;
        let txns_per_window = self.budget_bytes / self.txn_bytes.max(1);
        windows.saturating_mul(txns_per_window)
    }
}

/// Analytical description of the whole system.
///
/// ```
/// use fgqos_core::analysis::{PortModel, SystemModel};
/// use fgqos_sim::dram::DramConfig;
///
/// let model = SystemModel {
///     dram: DramConfig::default(),
///     fifo_depth: 4,
///     ports: vec![PortModel {
///         period_cycles: 1_000,
///         budget_bytes: 512,
///         max_outstanding: 8,
///         txn_bytes: 512,
///     }; 4],
///     critical_beats: 16,
/// };
/// let bound = model.critical_delay_bound().expect("feasible");
/// assert!(bound > 0);
/// assert!(model.regulated_utilization() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SystemModel {
    /// DRAM timing/geometry (the same struct the simulator uses).
    pub dram: DramConfig,
    /// Per-port ingress FIFO depth of the crossbar.
    pub fifo_depth: u64,
    /// The interfering ports.
    pub ports: Vec<PortModel>,
    /// Beats of the critical request being bounded.
    pub critical_beats: u64,
}

impl SystemModel {
    /// Worst-case serial service time of one transaction of `beats`
    /// data beats: closed-row access plus the data burst plus the worst
    /// bus turnaround.
    pub fn txn_service_cycles(&self, beats: u64) -> u64 {
        let d = &self.dram;
        d.t_rp + d.t_rcd + d.t_cl + beats + d.t_wtr.max(d.t_rtw)
    }

    fn worst_interferer_beats(&self) -> u64 {
        self.ports
            .iter()
            .map(|p| p.txn_bytes.div_ceil(BEAT_BYTES))
            .max()
            .unwrap_or(1)
    }

    /// Total backlog (transactions admitted ahead of the critical
    /// request at its arrival instant).
    pub fn backlog_txns(&self) -> u64 {
        self.ports
            .iter()
            .map(|p| p.backlog_txns(self.fifo_depth, self.dram.queue_capacity as u64))
            .sum()
    }

    /// FR-FCFS bypass transactions that can be served before the
    /// critical request: at most `row_hit_cap` per served-oldest (the
    /// backlog, the up-to-`N` entry-race transactions, and the critical
    /// request itself), but never more than the regulators can admit in
    /// the interval.
    pub fn bypass_txns(&self, backlog: u64, horizon: u64) -> u64 {
        let older = backlog + self.ports.len() as u64 + 1;
        let structural = self.dram.row_hit_cap as u64 * older;
        let admitted = self.ports.iter().fold(0u64, |acc, p| {
            acc.saturating_add(p.admissions_during(horizon))
        });
        structural.min(admitted)
    }

    /// Conservative worst-case delay (in cycles) from the critical
    /// request's handshake to its completion.
    ///
    /// Returns `None` if the iteration on the refresh term does not
    /// converge within the internal iteration limit (pathological
    /// configurations with `t_rfc` close to `t_refi`).
    pub fn critical_delay_bound(&self) -> Option<u64> {
        let t_intf = self.txn_service_cycles(self.worst_interferer_beats());
        let t_crit = self.txn_service_cycles(self.critical_beats);
        let n_ports = self.ports.len() as u64;
        let backlog = self.backlog_txns();

        // Base: queue entry + backlog drain + own service + transport.
        let enter = n_ports * t_intf;
        let mut bound = enter
            + backlog * t_intf
            + self.bypass_txns(backlog, enter + backlog * t_intf) * t_intf
            + t_crit
            + self.dram.transport_latency;

        if self.dram.t_refi == 0 {
            return Some(bound);
        }
        // Fold in refresh blocking: D = base(D) + (⌊D/tREFI⌋+1)·tRFC.
        for _ in 0..64 {
            let bypass = self.bypass_txns(backlog, bound) * t_intf;
            let refresh = (bound / self.dram.t_refi + 1) * self.dram.t_rfc;
            let next =
                enter + backlog * t_intf + bypass + t_crit + self.dram.transport_latency + refresh;
            if next == bound {
                return Some(bound);
            }
            if next < bound {
                // Monotone decrease cannot happen with these formulas;
                // treat as converged for safety.
                return Some(bound);
            }
            bound = next;
        }
        None
    }

    /// Lower bound on the long-run throughput of a closed-loop critical
    /// actor that performs one `txn_bytes`-byte access per
    /// `think_cycles` of computation: every access completes within the
    /// delay bound, so the iteration period is at most
    /// `think + bound` cycles.
    ///
    /// Returns `None` when the delay bound does not converge.
    pub fn critical_throughput_bound(
        &self,
        think_cycles: u64,
        txn_bytes: u64,
        freq: fgqos_sim::time::Freq,
    ) -> Option<fgqos_sim::time::Bandwidth> {
        let bound = self.critical_delay_bound()?;
        Some(fgqos_sim::time::Bandwidth::from_bytes_over(
            txn_bytes,
            think_cycles + bound,
            freq,
        ))
    }

    /// Every analytic figure a measured worst case is compared against,
    /// in one call: the delay bound, the throughput floor of a
    /// closed-loop critical actor (`think_cycles` of computation per
    /// `txn_bytes`-byte access at clock `freq`), and the aggregate
    /// regulated utilization. `fgqos hunt` reports exactly this bundle
    /// next to the worst measured interference it finds.
    pub fn bound_summary(
        &self,
        think_cycles: u64,
        txn_bytes: u64,
        freq: fgqos_sim::time::Freq,
    ) -> BoundSummary {
        BoundSummary {
            delay_bound: self.critical_delay_bound(),
            throughput_floor: self.critical_throughput_bound(think_cycles, txn_bytes, freq),
            utilization: self.regulated_utilization(),
        }
    }

    /// The long-run fraction of DRAM service capacity the regulated
    /// ports can demand (sanity metric; a value ≥ 1 means the budgets
    /// oversubscribe the device and backlogs grow without bound).
    pub fn regulated_utilization(&self) -> f64 {
        self.ports
            .iter()
            .map(|p| {
                let txns_per_window = p.budget_bytes as f64 / p.txn_bytes.max(1) as f64;
                let beats = p.txn_bytes.div_ceil(BEAT_BYTES);
                txns_per_window * self.txn_service_cycles(beats) as f64 / p.period_cycles as f64
            })
            .sum()
    }
}

/// The figures returned by [`SystemModel::bound_summary`].
#[derive(Debug, Clone, Copy)]
pub struct BoundSummary {
    /// [`SystemModel::critical_delay_bound`] — `None` when the iteration
    /// does not converge (aggressor demand saturates the device).
    pub delay_bound: Option<u64>,
    /// [`SystemModel::critical_throughput_bound`] — `None` exactly when
    /// `delay_bound` is.
    pub throughput_floor: Option<fgqos_sim::time::Bandwidth>,
    /// [`SystemModel::regulated_utilization`].
    pub utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> PortModel {
        PortModel {
            period_cycles: 1_000,
            budget_bytes: 1_024,
            max_outstanding: 8,
            txn_bytes: 512,
        }
    }

    fn model(n: usize) -> SystemModel {
        SystemModel {
            dram: DramConfig::default(),
            fifo_depth: 4,
            ports: vec![port(); n],
            critical_beats: 16,
        }
    }

    #[test]
    fn admission_curve_counts_windows() {
        let p = port();
        // 2 txns per window; Δ=0 -> 1 window; Δ=999 -> 1; Δ=1000 -> 2.
        assert_eq!(p.admissions_during(0), 2);
        assert_eq!(p.admissions_during(999), 2);
        assert_eq!(p.admissions_during(1_000), 4);
        assert_eq!(p.admissions_during(5_500), 12);
    }

    #[test]
    fn backlog_capped_by_fabric() {
        let mut p = port();
        p.max_outstanding = 100;
        let m = SystemModel {
            ports: vec![p],
            ..model(0)
        };
        // fifo 4 + queue 24 = 28 < 100.
        assert_eq!(m.backlog_txns(), 28);
    }

    #[test]
    fn bound_exists_and_grows_with_ports() {
        let b1 = model(1).critical_delay_bound().expect("converges");
        let b4 = model(4).critical_delay_bound().expect("converges");
        let b8 = model(8).critical_delay_bound().expect("converges");
        assert!(
            b1 < b4 && b4 < b8,
            "bound must grow with interference: {b1} {b4} {b8}"
        );
    }

    #[test]
    fn tighter_budgets_shrink_the_bypass_term() {
        let mut tight = model(4);
        for p in &mut tight.ports {
            p.budget_bytes = 512; // 1 txn per window
        }
        let loose = model(4);
        let bt = tight.critical_delay_bound().unwrap();
        let bl = loose.critical_delay_bound().unwrap();
        assert!(
            bt <= bl,
            "tighter budgets cannot worsen the bound: {bt} vs {bl}"
        );
    }

    #[test]
    fn no_interference_bound_is_just_service() {
        let m = model(0);
        let b = m.critical_delay_bound().unwrap();
        let service = m.txn_service_cycles(16) + m.dram.transport_latency;
        // Only refresh is added on top of the bare service time.
        assert!(b >= service);
        assert!(b <= service + 2 * m.dram.t_rfc + 1);
    }

    #[test]
    fn no_refresh_skips_iteration() {
        let mut m = model(2);
        m.dram.t_refi = 0;
        assert!(m.critical_delay_bound().is_some());
    }

    #[test]
    fn unregulated_port_is_backlog_bounded() {
        let mut m = model(2);
        m.ports.push(PortModel::unregulated(8, 512));
        let b = m.critical_delay_bound().expect("converges");
        let regulated_only = model(2).critical_delay_bound().unwrap();
        assert!(
            b > regulated_only,
            "an extra unregulated port must worsen the bound"
        );
        // The admission curve of an unregulated port is effectively
        // unbounded: the structural bypass cap must bind instead.
        let backlog = m.backlog_txns();
        assert!(m.bypass_txns(backlog, 1_000_000) <= m.dram.row_hit_cap as u64 * (backlog + 4));
    }

    #[test]
    fn throughput_bound_is_achievable_floor() {
        use fgqos_sim::time::Freq;
        let m = model(4);
        let bw = m
            .critical_throughput_bound(1_000, 256, Freq::ghz(1))
            .expect("bound converges");
        // One 256 B access per (1000 + D) cycles: positive and far below
        // the unregulated rate.
        assert!(bw.bytes_per_s() > 0.0);
        assert!(bw.bytes_per_s() < 256.0 / 1_000.0 * 1e9);
    }

    #[test]
    fn bound_summary_bundles_the_three_figures() {
        use fgqos_sim::time::Freq;
        let m = model(4);
        let s = m.bound_summary(1_000, 256, Freq::ghz(1));
        assert_eq!(s.delay_bound, m.critical_delay_bound());
        assert_eq!(
            s.throughput_floor.map(|b| b.bytes_per_s()),
            m.critical_throughput_bound(1_000, 256, Freq::ghz(1))
                .map(|b| b.bytes_per_s())
        );
        assert_eq!(s.utilization, m.regulated_utilization());
        assert!(s.delay_bound.is_some() == s.throughput_floor.is_some());
    }

    #[test]
    fn utilization_metric() {
        let m = model(4);
        let u = m.regulated_utilization();
        // 2 txns/window, ~77 cycles each, 1000-cycle window, 4 ports.
        assert!(u > 0.4 && u < 0.9, "utilization {u}");
        let empty = model(0);
        assert_eq!(empty.regulated_utilization(), 0.0);
    }
}
