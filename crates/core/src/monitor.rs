//! Window-based bandwidth telemetry.
//!
//! [`WindowMonitor`] is the counting half of the IP: it attributes every
//! accepted transaction to the current replenishment window, maintains
//! lifetime totals, and mirrors everything into the port's
//! [`RegFile`] so the software side always sees
//! fresh telemetry — the paper's "tightly-coupled monitoring".
//!
//! The monitor also implements the *configuration latching* rule: the
//! window period written by software takes effect at the next window
//! boundary, never mid-window.

use crate::regfile::{Reg, RegFile};
use fgqos_sim::axi::Dir;
use fgqos_sim::time::Cycle;
use std::sync::Arc;

/// Per-window byte/transaction accounting synced into a register file.
#[derive(Debug)]
pub struct WindowMonitor {
    regs: Arc<RegFile>,
    window_start: Cycle,
    period: u64,
    win_bytes: u64,
    win_rd_bytes: u64,
    win_wr_bytes: u64,
    win_txns: u64,
    total_bytes: u64,
    total_txns: u64,
    windows: u64,
    max_overshoot: u64,
}

impl WindowMonitor {
    /// Creates a monitor over `regs`, latching the initial period from the
    /// `PERIOD` register (clamped to at least 1 cycle).
    pub fn new(regs: Arc<RegFile>) -> Self {
        let period = (regs.read(Reg::Period) as u64).max(1);
        WindowMonitor {
            regs,
            window_start: Cycle::ZERO,
            period,
            win_bytes: 0,
            win_rd_bytes: 0,
            win_wr_bytes: 0,
            win_txns: 0,
            total_bytes: 0,
            total_txns: 0,
            windows: 0,
            max_overshoot: 0,
        }
    }

    /// The period currently in effect (latched; may lag the register).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Bytes accepted in the open window.
    pub fn win_bytes(&self) -> u64 {
        self.win_bytes
    }

    /// Read bytes accepted in the open window.
    pub fn win_rd_bytes(&self) -> u64 {
        self.win_rd_bytes
    }

    /// Write bytes accepted in the open window.
    pub fn win_wr_bytes(&self) -> u64 {
        self.win_wr_bytes
    }

    /// Transactions accepted in the open window.
    pub fn win_txns(&self) -> u64 {
        self.win_txns
    }

    /// Lifetime accepted bytes since the last stats reset.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Completed windows since the last stats reset.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Start cycle of the open window.
    pub fn window_start(&self) -> Cycle {
        self.window_start
    }

    /// Advances window state to `now`, closing any elapsed windows.
    ///
    /// `budget` is the byte budget that was in force for the closing
    /// windows (used for the `MAX_OVERSHOOT` telemetry). Returns the
    /// number of windows closed (0 most cycles).
    pub fn on_cycle(&mut self, now: Cycle, budget: u64) -> u32 {
        let mut closed = 0;
        while now.saturating_since(self.window_start) >= self.period {
            let overshoot = self.win_bytes.saturating_sub(budget);
            self.max_overshoot = self.max_overshoot.max(overshoot);
            self.windows += 1;
            self.regs.write(
                Reg::LastWinBytes,
                self.win_bytes.min(u32::MAX as u64) as u32,
            );
            self.regs
                .write(Reg::Windows, self.windows.min(u32::MAX as u64) as u32);
            self.regs.write(
                Reg::MaxOvershoot,
                self.max_overshoot.min(u32::MAX as u64) as u32,
            );
            self.win_bytes = 0;
            self.win_rd_bytes = 0;
            self.win_wr_bytes = 0;
            self.win_txns = 0;
            self.window_start += self.period;
            // Latch a possibly updated period for the next window.
            self.period = (self.regs.read(Reg::Period) as u64).max(1);
            closed += 1;
        }
        if closed > 0 {
            self.sync_window_regs();
        }
        closed
    }

    /// Records one accepted transaction of `bytes` bytes, attributed to
    /// the read channel. Prefer [`WindowMonitor::record_dir`] when the
    /// direction is known (it keeps the split-mode telemetry exact).
    pub fn record(&mut self, bytes: u64) {
        self.record_dir(bytes, Dir::Read);
    }

    /// Records one accepted transaction with its channel direction.
    pub fn record_dir(&mut self, bytes: u64, dir: Dir) {
        self.win_bytes += bytes;
        match dir {
            Dir::Read => self.win_rd_bytes += bytes,
            Dir::Write => self.win_wr_bytes += bytes,
        }
        self.win_txns += 1;
        self.total_bytes += bytes;
        self.total_txns += 1;
        self.sync_window_regs();
        self.regs
            .write64(Reg::TotalBytesLo, Reg::TotalBytesHi, self.total_bytes);
        self.regs
            .write64(Reg::TotalTxnsLo, Reg::TotalTxnsHi, self.total_txns);
    }

    fn sync_window_regs(&self) {
        self.regs
            .write(Reg::WinBytes, self.win_bytes.min(u32::MAX as u64) as u32);
        self.regs.write(
            Reg::WinRdBytes,
            self.win_rd_bytes.min(u32::MAX as u64) as u32,
        );
        self.regs.write(
            Reg::WinWrBytes,
            self.win_wr_bytes.min(u32::MAX as u64) as u32,
        );
        self.regs
            .write(Reg::WinTxns, self.win_txns.min(u32::MAX as u64) as u32);
    }

    /// Clears all telemetry and restarts the open window at `now`.
    pub fn reset(&mut self, now: Cycle) {
        self.win_bytes = 0;
        self.win_rd_bytes = 0;
        self.win_wr_bytes = 0;
        self.win_txns = 0;
        self.total_bytes = 0;
        self.total_txns = 0;
        self.windows = 0;
        self.max_overshoot = 0;
        self.window_start = now;
        self.period = (self.regs.read(Reg::Period) as u64).max(1);
        self.sync_window_regs();
        self.regs.write64(Reg::TotalBytesLo, Reg::TotalBytesHi, 0);
        self.regs.write64(Reg::TotalTxnsLo, Reg::TotalTxnsHi, 0);
        self.regs.write(Reg::Windows, 0);
        self.regs.write(Reg::LastWinBytes, 0);
        self.regs.write(Reg::MaxOvershoot, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_within_window() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 100);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.record(64);
        m.record(32);
        assert_eq!(m.win_bytes(), 96);
        assert_eq!(m.win_txns(), 2);
        assert_eq!(regs.read(Reg::WinBytes), 96);
        assert_eq!(regs.read(Reg::WinTxns), 2);
        assert_eq!(regs.read64(Reg::TotalBytesLo, Reg::TotalBytesHi), 96);
    }

    #[test]
    fn window_rollover_publishes_telemetry() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 100);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.record(500);
        let closed = m.on_cycle(Cycle::new(100), 400);
        assert_eq!(closed, 1);
        assert_eq!(regs.read(Reg::LastWinBytes), 500);
        assert_eq!(regs.read(Reg::Windows), 1);
        assert_eq!(regs.read(Reg::MaxOvershoot), 100);
        assert_eq!(m.win_bytes(), 0);
        // Totals persist across windows.
        assert_eq!(m.total_bytes(), 500);
    }

    #[test]
    fn multiple_elapsed_windows_closed_at_once() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 10);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        let closed = m.on_cycle(Cycle::new(35), 0);
        assert_eq!(closed, 3);
        assert_eq!(m.windows(), 3);
        assert_eq!(m.window_start(), Cycle::new(30));
    }

    #[test]
    fn period_latched_at_boundary() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 100);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        // Software shrinks the period mid-window: no effect yet.
        regs.sw_write(Reg::Period, 10);
        assert_eq!(m.on_cycle(Cycle::new(50), 0), 0);
        assert_eq!(m.period(), 100);
        // After the boundary the new period is live.
        m.on_cycle(Cycle::new(100), 0);
        assert_eq!(m.period(), 10);
    }

    #[test]
    fn zero_period_clamped() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 0);
        let m = WindowMonitor::new(regs);
        assert_eq!(m.period(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 100);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.record(1000);
        m.on_cycle(Cycle::new(100), 0);
        m.record(50);
        m.reset(Cycle::new(150));
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.windows(), 0);
        assert_eq!(m.win_bytes(), 0);
        assert_eq!(m.window_start(), Cycle::new(150));
        assert_eq!(regs.read(Reg::Windows), 0);
        assert_eq!(regs.read64(Reg::TotalBytesLo, Reg::TotalBytesHi), 0);
        assert_eq!(regs.read(Reg::MaxOvershoot), 0);
    }

    #[test]
    fn overshoot_tracks_maximum() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 10);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.record(150);
        m.on_cycle(Cycle::new(10), 100); // overshoot 50
        m.record(120);
        m.on_cycle(Cycle::new(20), 100); // overshoot 20 (max stays 50)
        assert_eq!(regs.read(Reg::MaxOvershoot), 50);
    }
}
