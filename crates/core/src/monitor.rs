//! Window-based bandwidth telemetry.
//!
//! [`WindowMonitor`] is the counting half of the IP: it attributes every
//! accepted transaction to the current replenishment window, maintains
//! lifetime totals, and mirrors everything into the port's
//! [`RegFile`] so the software side always sees
//! fresh telemetry — the paper's "tightly-coupled monitoring".
//!
//! The monitor also implements the *configuration latching* rule: the
//! window period written by software takes effect at the next window
//! boundary, never mid-window.

use crate::regfile::{Reg, RegFile};
use fgqos_sim::axi::Dir;
use fgqos_sim::json::Value;
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, StateHasher};
use std::sync::Arc;

/// Default capacity of a [`WindowLog`] (64 Ki windows ≈ 4 MiB).
pub const DEFAULT_LOG_WINDOWS: usize = 1 << 16;

/// One closed window as recorded by a [`WindowLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowRecord {
    /// Zero-based index of the window since monitor creation/reset.
    pub index: u64,
    /// Start cycle of the window.
    pub start: u64,
    /// Window length in effect (cycles).
    pub period: u64,
    /// Bytes accepted in the window.
    pub bytes: u64,
    /// Read-channel bytes accepted in the window.
    pub rd_bytes: u64,
    /// Write-channel bytes accepted in the window.
    pub wr_bytes: u64,
    /// Transactions accepted in the window.
    pub txns: u64,
    /// Byte budget that was in force for the window.
    pub budget: u64,
    /// Bytes accepted beyond the budget (0 when within budget).
    pub overshoot: u64,
}

/// Bounded per-window time series captured by a [`WindowMonitor`].
///
/// Opt-in via [`WindowMonitor::enable_log`]; the regulation path never
/// allocates for it unless enabled. Once [`WindowLog::capacity`] windows
/// are stored, further windows are counted in [`WindowLog::dropped`] and
/// discarded (oldest-first retention, like
/// [`fgqos_sim::trace::Trace`]).
#[derive(Debug, Clone)]
pub struct WindowLog {
    records: Vec<WindowRecord>,
    capacity: usize,
    dropped: u64,
}

/// Schema identifier written into window-log exports.
pub const WINDOW_LOG_SCHEMA: &str = "fgqos.window-log";
/// Schema version written into window-log exports.
pub const WINDOW_LOG_VERSION: u64 = 1;

impl WindowLog {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window log capacity must be non-zero");
        WindowLog {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, record: WindowRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded windows, oldest first.
    pub fn records(&self) -> &[WindowRecord] {
        &self.records
    }

    /// Maximum number of windows the log retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Windows discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the log as CSV with a schema-version comment line.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "# {WINDOW_LOG_SCHEMA} v{WINDOW_LOG_VERSION}\n\
             window,start_cycle,period,bytes,rd_bytes,wr_bytes,txns,budget,overshoot\n"
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{}",
                r.index,
                r.start,
                r.period,
                r.bytes,
                r.rd_bytes,
                r.wr_bytes,
                r.txns,
                r.budget,
                r.overshoot
            );
        }
        out
    }

    /// Exports the log as a schema-versioned JSON document.
    pub fn to_json(&self) -> Value {
        let mut windows = Value::arr();
        for r in &self.records {
            let mut o = Value::obj();
            o.set("window", Value::from(r.index));
            o.set("start_cycle", Value::from(r.start));
            o.set("period", Value::from(r.period));
            o.set("bytes", Value::from(r.bytes));
            o.set("rd_bytes", Value::from(r.rd_bytes));
            o.set("wr_bytes", Value::from(r.wr_bytes));
            o.set("txns", Value::from(r.txns));
            o.set("budget", Value::from(r.budget));
            o.set("overshoot", Value::from(r.overshoot));
            windows.push(o);
        }
        let mut doc = Value::obj();
        doc.set("schema", Value::str(WINDOW_LOG_SCHEMA));
        doc.set("version", Value::from(WINDOW_LOG_VERSION));
        doc.set("dropped", Value::from(self.dropped));
        doc.set("windows", windows);
        doc
    }
}

/// Per-window byte/transaction accounting synced into a register file.
#[derive(Debug)]
pub struct WindowMonitor {
    regs: Arc<RegFile>,
    window_start: Cycle,
    period: u64,
    win_bytes: u64,
    win_rd_bytes: u64,
    win_wr_bytes: u64,
    win_txns: u64,
    total_bytes: u64,
    total_txns: u64,
    windows: u64,
    max_overshoot: u64,
    log: Option<WindowLog>,
}

impl WindowMonitor {
    /// Creates a monitor over `regs`, latching the initial period from the
    /// `PERIOD` register (clamped to at least 1 cycle).
    pub fn new(regs: Arc<RegFile>) -> Self {
        let period = (regs.read(Reg::Period) as u64).max(1);
        WindowMonitor {
            regs,
            window_start: Cycle::ZERO,
            period,
            win_bytes: 0,
            win_rd_bytes: 0,
            win_wr_bytes: 0,
            win_txns: 0,
            total_bytes: 0,
            total_txns: 0,
            windows: 0,
            max_overshoot: 0,
            log: None,
        }
    }

    /// Starts recording every closed window into a bounded [`WindowLog`]
    /// holding at most `capacity` windows. Replaces any existing log.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_log(&mut self, capacity: usize) {
        self.log = Some(WindowLog::new(capacity));
    }

    /// The per-window log, if [`WindowMonitor::enable_log`] was called.
    pub fn log(&self) -> Option<&WindowLog> {
        self.log.as_ref()
    }

    /// The period currently in effect (latched; may lag the register).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Bytes accepted in the open window.
    pub fn win_bytes(&self) -> u64 {
        self.win_bytes
    }

    /// Read bytes accepted in the open window.
    pub fn win_rd_bytes(&self) -> u64 {
        self.win_rd_bytes
    }

    /// Write bytes accepted in the open window.
    pub fn win_wr_bytes(&self) -> u64 {
        self.win_wr_bytes
    }

    /// Transactions accepted in the open window.
    pub fn win_txns(&self) -> u64 {
        self.win_txns
    }

    /// Lifetime accepted bytes since the last stats reset.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Completed windows since the last stats reset.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Start cycle of the open window.
    pub fn window_start(&self) -> Cycle {
        self.window_start
    }

    /// Advances window state to `now`, closing any elapsed windows.
    ///
    /// `budget` is the byte budget that was in force for the closing
    /// windows (used for the `MAX_OVERSHOOT` telemetry). Returns the
    /// number of windows closed (0 most cycles).
    pub fn on_cycle(&mut self, now: Cycle, budget: u64) -> u32 {
        let mut closed = 0;
        while now.saturating_since(self.window_start) >= self.period {
            let overshoot = self.win_bytes.saturating_sub(budget);
            self.max_overshoot = self.max_overshoot.max(overshoot);
            if let Some(log) = &mut self.log {
                log.push(WindowRecord {
                    index: self.windows,
                    start: self.window_start.get(),
                    period: self.period,
                    bytes: self.win_bytes,
                    rd_bytes: self.win_rd_bytes,
                    wr_bytes: self.win_wr_bytes,
                    txns: self.win_txns,
                    budget,
                    overshoot,
                });
            }
            self.windows += 1;
            self.regs.write(
                Reg::LastWinBytes,
                self.win_bytes.min(u32::MAX as u64) as u32,
            );
            self.regs
                .write(Reg::Windows, self.windows.min(u32::MAX as u64) as u32);
            self.regs.write(
                Reg::MaxOvershoot,
                self.max_overshoot.min(u32::MAX as u64) as u32,
            );
            self.win_bytes = 0;
            self.win_rd_bytes = 0;
            self.win_wr_bytes = 0;
            self.win_txns = 0;
            self.window_start += self.period;
            // Latch a possibly updated period for the next window.
            self.period = (self.regs.read(Reg::Period) as u64).max(1);
            closed += 1;
        }
        if closed > 0 {
            self.sync_window_regs();
        }
        closed
    }

    /// Records one accepted transaction of `bytes` bytes, attributed to
    /// the read channel. Prefer [`WindowMonitor::record_dir`] when the
    /// direction is known (it keeps the split-mode telemetry exact).
    pub fn record(&mut self, bytes: u64) {
        self.record_dir(bytes, Dir::Read);
    }

    /// Records one accepted transaction with its channel direction.
    pub fn record_dir(&mut self, bytes: u64, dir: Dir) {
        self.win_bytes += bytes;
        match dir {
            Dir::Read => self.win_rd_bytes += bytes,
            Dir::Write => self.win_wr_bytes += bytes,
        }
        self.win_txns += 1;
        self.total_bytes += bytes;
        self.total_txns += 1;
        self.sync_window_regs();
        self.regs
            .write64(Reg::TotalBytesLo, Reg::TotalBytesHi, self.total_bytes);
        self.regs
            .write64(Reg::TotalTxnsLo, Reg::TotalTxnsHi, self.total_txns);
    }

    fn sync_window_regs(&self) {
        self.regs
            .write(Reg::WinBytes, self.win_bytes.min(u32::MAX as u64) as u32);
        self.regs.write(
            Reg::WinRdBytes,
            self.win_rd_bytes.min(u32::MAX as u64) as u32,
        );
        self.regs.write(
            Reg::WinWrBytes,
            self.win_wr_bytes.min(u32::MAX as u64) as u32,
        );
        self.regs
            .write(Reg::WinTxns, self.win_txns.min(u32::MAX as u64) as u32);
    }

    /// Deep-copies the monitor for a snapshot fork, binding it to the
    /// register block `ctx` maps this monitor's block to.
    pub(crate) fn fork(&self, ctx: &mut ForkCtx) -> WindowMonitor {
        WindowMonitor {
            regs: ctx.fork_arc(&self.regs),
            window_start: self.window_start,
            period: self.period,
            win_bytes: self.win_bytes,
            win_rd_bytes: self.win_rd_bytes,
            win_wr_bytes: self.win_wr_bytes,
            win_txns: self.win_txns,
            total_bytes: self.total_bytes,
            total_txns: self.total_txns,
            windows: self.windows,
            max_overshoot: self.max_overshoot,
            log: self.log.clone(),
        }
    }

    /// Feeds the monitor state (latched period, open-window counters,
    /// lifetime totals, log occupancy) into a snapshot fingerprint
    /// stream. The register block itself is hashed by the owning gate.
    pub(crate) fn snap(&self, h: &mut StateHasher) {
        h.section("window-monitor");
        h.write_cycle(self.window_start.get());
        h.write_u64(self.period);
        // Open-window counters stay plain: a steady-state period always
        // spans whole windows, so they recur exactly at the boundary.
        h.write_u64(self.win_bytes);
        h.write_u64(self.win_rd_bytes);
        h.write_u64(self.win_wr_bytes);
        h.write_u64(self.win_txns);
        h.write_counter_u64(self.total_bytes);
        h.write_counter_u64(self.total_txns);
        h.write_counter_u64(self.windows);
        h.write_u64(self.max_overshoot);
        match &self.log {
            None => h.write_bool(false),
            Some(log) => {
                h.write_bool(true);
                h.write_usize(log.records.len());
                h.write_u64(log.dropped);
            }
        }
    }

    /// Restores the monitor state from a serialized snapshot stream (the
    /// decode mirror of [`WindowMonitor::snap`]). The register block is
    /// restored separately by the owning gate.
    ///
    /// The stream records only the window log's *occupancy*, not its
    /// records, so a log is restorable only while still empty (the
    /// warm-boundary case: logging enabled, no window closed yet); a
    /// populated log is a diagnostic error rather than silent data loss.
    ///
    /// # Errors
    ///
    /// Any [`fgqos_sim::SnapDecodeError`] aborts the whole load.
    pub(crate) fn snap_load(
        &mut self,
        r: &mut fgqos_sim::SnapReader<'_>,
    ) -> Result<(), fgqos_sim::SnapDecodeError> {
        use fgqos_sim::SnapDecodeError;
        r.section("window-monitor")?;
        self.window_start = Cycle::new(r.read_u64("window-monitor window_start")?);
        self.period = r.read_u64("window-monitor period")?;
        self.win_bytes = r.read_u64("window-monitor win_bytes")?;
        self.win_rd_bytes = r.read_u64("window-monitor win_rd_bytes")?;
        self.win_wr_bytes = r.read_u64("window-monitor win_wr_bytes")?;
        self.win_txns = r.read_u64("window-monitor win_txns")?;
        self.total_bytes = r.read_u64("window-monitor total_bytes")?;
        self.total_txns = r.read_u64("window-monitor total_txns")?;
        self.windows = r.read_u64("window-monitor windows")?;
        self.max_overshoot = r.read_u64("window-monitor max_overshoot")?;
        if r.read_bool("window-monitor log flag")? {
            let at = r.position();
            let records = r.read_usize("window-monitor log records")?;
            let dropped = r.read_u64("window-monitor log dropped")?;
            if records != 0 || dropped != 0 {
                return Err(SnapDecodeError::BadValue {
                    what: format!(
                        "window log holds {records} record(s) ({dropped} dropped); \
                         only empty logs are restorable"
                    ),
                    at,
                });
            }
            let capacity = self
                .log
                .as_ref()
                .map_or(DEFAULT_LOG_WINDOWS, |log| log.capacity);
            self.log = Some(WindowLog::new(capacity));
        } else {
            self.log = None;
        }
        Ok(())
    }

    /// Clears all telemetry (including any window log's records) and
    /// restarts the open window at `now`.
    pub fn reset(&mut self, now: Cycle) {
        if let Some(log) = &mut self.log {
            let capacity = log.capacity;
            *log = WindowLog::new(capacity);
        }
        self.win_bytes = 0;
        self.win_rd_bytes = 0;
        self.win_wr_bytes = 0;
        self.win_txns = 0;
        self.total_bytes = 0;
        self.total_txns = 0;
        self.windows = 0;
        self.max_overshoot = 0;
        self.window_start = now;
        self.period = (self.regs.read(Reg::Period) as u64).max(1);
        self.sync_window_regs();
        self.regs.write64(Reg::TotalBytesLo, Reg::TotalBytesHi, 0);
        self.regs.write64(Reg::TotalTxnsLo, Reg::TotalTxnsHi, 0);
        self.regs.write(Reg::Windows, 0);
        self.regs.write(Reg::LastWinBytes, 0);
        self.regs.write(Reg::MaxOvershoot, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_within_window() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 100);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.record(64);
        m.record(32);
        assert_eq!(m.win_bytes(), 96);
        assert_eq!(m.win_txns(), 2);
        assert_eq!(regs.read(Reg::WinBytes), 96);
        assert_eq!(regs.read(Reg::WinTxns), 2);
        assert_eq!(regs.read64(Reg::TotalBytesLo, Reg::TotalBytesHi), 96);
    }

    #[test]
    fn window_rollover_publishes_telemetry() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 100);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.record(500);
        let closed = m.on_cycle(Cycle::new(100), 400);
        assert_eq!(closed, 1);
        assert_eq!(regs.read(Reg::LastWinBytes), 500);
        assert_eq!(regs.read(Reg::Windows), 1);
        assert_eq!(regs.read(Reg::MaxOvershoot), 100);
        assert_eq!(m.win_bytes(), 0);
        // Totals persist across windows.
        assert_eq!(m.total_bytes(), 500);
    }

    #[test]
    fn multiple_elapsed_windows_closed_at_once() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 10);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        let closed = m.on_cycle(Cycle::new(35), 0);
        assert_eq!(closed, 3);
        assert_eq!(m.windows(), 3);
        assert_eq!(m.window_start(), Cycle::new(30));
    }

    #[test]
    fn period_latched_at_boundary() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 100);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        // Software shrinks the period mid-window: no effect yet.
        regs.sw_write(Reg::Period, 10);
        assert_eq!(m.on_cycle(Cycle::new(50), 0), 0);
        assert_eq!(m.period(), 100);
        // After the boundary the new period is live.
        m.on_cycle(Cycle::new(100), 0);
        assert_eq!(m.period(), 10);
    }

    #[test]
    fn zero_period_clamped() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 0);
        let m = WindowMonitor::new(regs);
        assert_eq!(m.period(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 100);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.record(1000);
        m.on_cycle(Cycle::new(100), 0);
        m.record(50);
        m.reset(Cycle::new(150));
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.windows(), 0);
        assert_eq!(m.win_bytes(), 0);
        assert_eq!(m.window_start(), Cycle::new(150));
        assert_eq!(regs.read(Reg::Windows), 0);
        assert_eq!(regs.read64(Reg::TotalBytesLo, Reg::TotalBytesHi), 0);
        assert_eq!(regs.read(Reg::MaxOvershoot), 0);
    }

    #[test]
    fn window_log_records_closed_windows() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 10);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.enable_log(8);
        m.record_dir(100, Dir::Read);
        m.record_dir(60, Dir::Write);
        m.on_cycle(Cycle::new(10), 120);
        m.on_cycle(Cycle::new(25), 120); // closes one idle window
        let log = m.log().unwrap();
        assert_eq!(log.records().len(), 2);
        let r0 = log.records()[0];
        assert_eq!(r0.index, 0);
        assert_eq!(r0.start, 0);
        assert_eq!(r0.bytes, 160);
        assert_eq!(r0.rd_bytes, 100);
        assert_eq!(r0.wr_bytes, 60);
        assert_eq!(r0.txns, 2);
        assert_eq!(r0.budget, 120);
        assert_eq!(r0.overshoot, 40);
        let r1 = log.records()[1];
        assert_eq!(r1.index, 1);
        assert_eq!(r1.bytes, 0);
        assert_eq!(r1.overshoot, 0);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn window_log_caps_and_counts_dropped() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 10);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.enable_log(3);
        m.on_cycle(Cycle::new(100), 0); // closes 10 windows
        let log = m.log().unwrap();
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.dropped(), 7);
        assert_eq!(log.capacity(), 3);
        // Reset clears records but keeps the capacity.
        m.reset(Cycle::new(100));
        let log = m.log().unwrap();
        assert!(log.records().is_empty());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.capacity(), 3);
    }

    #[test]
    fn window_log_exports() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 10);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.enable_log(8);
        m.record(50);
        m.on_cycle(Cycle::new(10), 40);
        let log = m.log().unwrap();
        let csv = log.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("# fgqos.window-log v1"));
        assert_eq!(
            lines.next(),
            Some("window,start_cycle,period,bytes,rd_bytes,wr_bytes,txns,budget,overshoot")
        );
        assert_eq!(lines.next(), Some("0,0,10,50,50,0,1,40,10"));
        let doc = log.to_json();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(WINDOW_LOG_SCHEMA));
        let w = doc.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(w[0].get("overshoot").unwrap().as_u64(), Some(10));
    }

    #[test]
    fn overshoot_tracks_maximum() {
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, 10);
        let mut m = WindowMonitor::new(Arc::clone(&regs));
        m.record(150);
        m.on_cycle(Cycle::new(10), 100); // overshoot 50
        m.record(120);
        m.on_cycle(Cycle::new(20), 100); // overshoot 20 (max stays 50)
        assert_eq!(regs.read(Reg::MaxOvershoot), 50);
    }
}
