//! # fgqos-core — tightly-coupled bandwidth monitoring and regulation
//!
//! This crate implements the primary contribution of *"Fine-Grained QoS
//! Control via Tightly-Coupled Bandwidth Monitoring and Regulation for
//! FPGA-based Heterogeneous SoCs"* (DAC 2023):
//!
//! * [`regfile`] — the bit-accurate 32-bit memory-mapped register
//!   interface of the regulator IP (what the Linux driver pokes over
//!   MMIO on the real FPGA),
//! * [`monitor`] — per-port, per-window bandwidth telemetry,
//! * [`regulator`] — the window-based budget regulator that gates the AXI
//!   address handshake ([`TcRegulator`] implements
//!   [`fgqos_sim::PortGate`], the seam where the IP sits on the fabric),
//! * [`driver`] — the typed software driver over the register file,
//! * [`policy`] — host-software QoS policies built on the driver: static
//!   partitioning, CMRI-style reclaim of unused critical bandwidth, and a
//!   feedback controller holding a critical actor's QoS target,
//! * [`cost`] — an analytic FPGA resource model (LUT/FF/BRAM) of the IP.
//!
//! ## The mechanism in one paragraph
//!
//! Each regulated AXI master port carries a regulator instance. The
//! regulator divides time into replenishment windows of `PERIOD` cycles
//! and admits transactions while the byte budget `BUDGET` lasts; when the
//! budget is exhausted it back-pressures the port (deasserts the address
//! handshake) until the next window. Because the regulator is hardware at
//! the port, `PERIOD` can be microsecond-scale — two to three orders of
//! magnitude finer than the OS-tick granularity software regulators such
//! as MemGuard achieve — which bounds the burst a misbehaving master can
//! inject between enforcement points to `BUDGET` bytes instead of a full
//! tick's worth of traffic.
//!
//! ## Quickstart
//!
//! ```
//! use fgqos_core::prelude::*;
//! use fgqos_sim::prelude::*;
//!
//! // Regulator gating a greedy DMA to ~1 byte/cycle (≈1 GB/s at 1 GHz),
//! // replenished every microsecond.
//! let (regulator, driver) = TcRegulator::create(RegulatorConfig {
//!     period_cycles: 1_000,
//!     budget_bytes: 1_000,
//!     enabled: true,
//!     ..RegulatorConfig::default()
//! });
//! let mut soc = SocBuilder::new(SocConfig::default())
//!     .gated_master(
//!         "dma",
//!         SequentialSource::writes(0, 4096, u64::MAX),
//!         MasterKind::Accelerator,
//!         regulator,
//!     )
//!     .build();
//! soc.run(100_000);
//! let telemetry = driver.telemetry();
//! assert!(telemetry.total_bytes <= 101 * 1_000); // ≈ budget × windows
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod bucket;
pub mod cost;
pub mod driver;
pub mod fabric;
pub mod irq;
pub mod monitor;
pub mod policy;
pub mod program;
pub mod regfile;
pub mod regulator;
pub mod shared;

pub use analysis::{PortModel, SystemModel};
pub use bucket::{BucketConfig, LeakyBucketRegulator};
pub use cost::{ResourceEstimate, ResourceModel, Zu9egBudget};
pub use driver::{RegulatorDriver, RegulatorTelemetry};
pub use fabric::{PortRole, QosFabric, QosFabricBuilder};
pub use irq::{IrqDispatcher, IrqHandler};
pub use monitor::{WindowLog, WindowMonitor, WindowRecord};
pub use policy::{FeedbackController, PortBudget, ReclaimConfig, ReclaimPolicy, StaticPartition};
pub use program::{FusedController, ProgramOp, ScenarioProgram, TimedOp};
pub use regfile::{Reg, RegFile};
pub use regulator::{ChargePolicy, OvershootPolicy, RegulatorConfig, SplitBudgets, TcRegulator};
pub use shared::{SharedBudgetGate, SharedRegulator};

/// Commonly used items.
pub mod prelude {
    pub use crate::analysis::{PortModel, SystemModel};
    pub use crate::bucket::{BucketConfig, LeakyBucketRegulator};
    pub use crate::cost::{ResourceEstimate, ResourceModel, Zu9egBudget};
    pub use crate::driver::{RegulatorDriver, RegulatorTelemetry};
    pub use crate::fabric::{PortRole, QosFabric, QosFabricBuilder};
    pub use crate::irq::{IrqDispatcher, IrqHandler};
    pub use crate::policy::{
        FeedbackController, PortBudget, ReclaimConfig, ReclaimPolicy, StaticPartition,
    };
    pub use crate::program::{FusedController, ProgramOp, ScenarioProgram, TimedOp};
    pub use crate::regfile::{Reg, RegFile};
    pub use crate::regulator::{
        ChargePolicy, OvershootPolicy, RegulatorConfig, SplitBudgets, TcRegulator,
    };
    pub use crate::shared::{SharedBudgetGate, SharedRegulator};
}
