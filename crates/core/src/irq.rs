//! Interrupt path of the regulator IP.
//!
//! Besides memory-mapped polling, the real IP raises an interrupt line
//! when a port exhausts its budget, so host software can react
//! event-driven instead of burning a polling loop. This module models
//! that path: the sticky `EXHAUSTED` status bit is the interrupt source,
//! the `IRQ_ENABLE` control bit masks it, and [`IrqDispatcher`] plays the
//! role of the GIC + kernel: it watches the lines and invokes a handler
//! after a configurable dispatch latency. Handlers acknowledge by
//! clearing the sticky bit (via
//! [`RegulatorDriver::clear_exhausted`]). The line is level-triggered:
//! while it stays asserted *and the handler acknowledges*, deliveries
//! repeat (one per dispatch latency); a handler that does not
//! acknowledge leaves the line masked until it drops.

use crate::driver::RegulatorDriver;
use crate::regfile::{Reg, CTRL_IRQ_ENABLE, STATUS_EXHAUSTED};
use fgqos_sim::system::Controller;
use fgqos_sim::time::Cycle;

/// Handler invoked on an exhaustion interrupt: receives the port's
/// driver and the delivery time.
pub type IrqHandler = Box<dyn FnMut(&RegulatorDriver, Cycle)>;

struct Line {
    driver: RegulatorDriver,
    handler: IrqHandler,
    /// Delivery scheduled at this time (assertion already latched).
    pending_at: Option<Cycle>,
    /// Whether a new assertion may latch a delivery. Cleared when a
    /// handler returns without acknowledging (re-armed when the line
    /// drops).
    armed: bool,
    delivered: u64,
}

/// Dispatches regulator exhaustion interrupts to software handlers.
///
/// Register as a [`Controller`] on the
/// [`SocBuilder`](fgqos_sim::system::SocBuilder).
pub struct IrqDispatcher {
    latency: u64,
    lines: Vec<Line>,
}

impl std::fmt::Debug for IrqDispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IrqDispatcher")
            .field("latency", &self.latency)
            .field("lines", &self.lines.len())
            .finish()
    }
}

impl IrqDispatcher {
    /// Creates a dispatcher with the given interrupt delivery latency
    /// (GIC propagation + kernel entry, in cycles).
    pub fn new(latency_cycles: u64) -> Self {
        IrqDispatcher {
            latency: latency_cycles,
            lines: Vec::new(),
        }
    }

    /// Connects a port's interrupt line: enables `IRQ_ENABLE` in the
    /// port's control register and registers `handler` for delivery.
    pub fn connect(&mut self, driver: RegulatorDriver, handler: IrqHandler) {
        driver.regfile().set_bits(Reg::Ctrl, CTRL_IRQ_ENABLE);
        self.lines.push(Line {
            driver,
            handler,
            pending_at: None,
            armed: true,
            delivered: 0,
        });
    }

    /// Total interrupts delivered across all lines.
    pub fn delivered(&self) -> u64 {
        self.lines.iter().map(|l| l.delivered).sum()
    }
}

impl Controller for IrqDispatcher {
    fn on_cycle(&mut self, now: Cycle) {
        for line in &mut self.lines {
            let regs = line.driver.regfile();
            let level = regs.read(Reg::Ctrl) & CTRL_IRQ_ENABLE != 0
                && regs.read(Reg::Status) & STATUS_EXHAUSTED != 0;
            if !level {
                line.armed = true;
            }
            if level && line.armed && line.pending_at.is_none() {
                line.pending_at = Some(now + self.latency);
            }
            if let Some(at) = line.pending_at {
                if now >= at {
                    line.pending_at = None;
                    line.delivered += 1;
                    (line.handler)(&line.driver, now);
                    // A handler that leaves the line asserted has
                    // effectively masked it: wait for it to drop before
                    // latching again.
                    let still = regs.read(Reg::Ctrl) & CTRL_IRQ_ENABLE != 0
                        && regs.read(Reg::Status) & STATUS_EXHAUSTED != 0;
                    line.armed = !still;
                }
            }
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let mut wake: Option<Cycle> = None;
        let mut merge = |c: Cycle| {
            wake = Some(wake.map_or(c, |w: Cycle| w.min(c)));
        };
        for line in &self.lines {
            if let Some(at) = line.pending_at {
                merge(at.max(now));
            } else if line.armed {
                let regs = line.driver.regfile();
                let level = regs.read(Reg::Ctrl) & CTRL_IRQ_ENABLE != 0
                    && regs.read(Reg::Status) & STATUS_EXHAUSTED != 0;
                if level {
                    // An asserted, armed line latches a delivery on the
                    // very next executed cycle: do not skip past it.
                    merge(now);
                }
            }
            // A dropped or disarmed line needs no wake of its own: the
            // level can only flip at an executed cycle (a gate decision
            // or a handler run), which wakes the SoC anyway.
        }
        wake
    }

    fn label(&self) -> &'static str {
        "irq-dispatcher"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regulator::{RegulatorConfig, TcRegulator};
    use fgqos_sim::axi::{Dir, MasterId, Request};
    use fgqos_sim::gate::PortGate;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn exhaust(reg: &mut TcRegulator, now: Cycle) {
        let r = Request::new(MasterId::new(0), 0, 0, 16, Dir::Read, now);
        let _ = reg.try_accept(&r, now); // consumes the whole budget
        let _ = reg.try_accept(&r, now); // denied -> EXHAUSTED set
    }

    fn regulator() -> (TcRegulator, RegulatorDriver) {
        TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 256,
            enabled: true,
            ..RegulatorConfig::default()
        })
    }

    #[test]
    fn delivers_after_latency_once_per_edge() {
        let (mut reg, driver) = regulator();
        let events = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&events);
        let mut irq = IrqDispatcher::new(50);
        irq.connect(
            driver.clone(),
            Box::new(move |d, at| {
                sink.borrow_mut().push(at);
                d.clear_exhausted();
            }),
        );

        reg.on_cycle(Cycle::ZERO);
        exhaust(&mut reg, Cycle::ZERO);
        for t in 0..200u64 {
            irq.on_cycle(Cycle::new(t));
        }
        let events = events.borrow();
        assert_eq!(events.len(), 1, "one delivery per assertion edge");
        assert_eq!(
            events[0],
            Cycle::new(50),
            "delivery after the dispatch latency"
        );
        assert_eq!(irq.delivered(), 1);
        // The handler acknowledged: the sticky bit is clear.
        assert!(!driver.telemetry().exhausted);
    }

    #[test]
    fn reasserts_after_ack_and_new_exhaustion() {
        let (mut reg, driver) = regulator();
        let count = Rc::new(RefCell::new(0u32));
        let sink = Rc::clone(&count);
        let mut irq = IrqDispatcher::new(10);
        irq.connect(
            driver.clone(),
            Box::new(move |d, _| {
                *sink.borrow_mut() += 1;
                d.clear_exhausted();
            }),
        );

        reg.on_cycle(Cycle::ZERO);
        exhaust(&mut reg, Cycle::ZERO);
        for t in 0..100u64 {
            irq.on_cycle(Cycle::new(t));
        }
        // New window, new exhaustion: a second edge.
        reg.on_cycle(Cycle::new(1_000));
        exhaust(&mut reg, Cycle::new(1_000));
        for t in 1_000..1_100u64 {
            irq.on_cycle(Cycle::new(t));
        }
        assert_eq!(*count.borrow(), 2);
    }

    #[test]
    fn unacknowledged_level_does_not_refire() {
        let (mut reg, driver) = regulator();
        let count = Rc::new(RefCell::new(0u32));
        let sink = Rc::clone(&count);
        let mut irq = IrqDispatcher::new(0);
        // Handler does NOT acknowledge.
        irq.connect(
            driver.clone(),
            Box::new(move |_, _| *sink.borrow_mut() += 1),
        );

        reg.on_cycle(Cycle::ZERO);
        exhaust(&mut reg, Cycle::ZERO);
        for t in 0..500u64 {
            irq.on_cycle(Cycle::new(t));
        }
        assert_eq!(
            *count.borrow(),
            1,
            "level stays asserted but only one edge fired"
        );
        assert!(
            driver.telemetry().exhausted,
            "bit remains sticky without ack"
        );
    }

    #[test]
    fn masked_line_never_fires() {
        let (mut reg, driver) = regulator();
        let count = Rc::new(RefCell::new(0u32));
        let sink = Rc::clone(&count);
        let mut irq = IrqDispatcher::new(0);
        irq.connect(
            driver.clone(),
            Box::new(move |_, _| *sink.borrow_mut() += 1),
        );
        // Software masks the line again after connect.
        driver.regfile().clear_bits(Reg::Ctrl, CTRL_IRQ_ENABLE);

        reg.on_cycle(Cycle::ZERO);
        exhaust(&mut reg, Cycle::ZERO);
        for t in 0..100u64 {
            irq.on_cycle(Cycle::new(t));
        }
        assert_eq!(*count.borrow(), 0);
    }
}
