//! System-level QoS fabric assembly.
//!
//! On the real platform, integrating the IP means instantiating one
//! regulator per PL master port, wiring its AXI-Lite block into the
//! address map, and handing the driver a name→block table (device tree).
//! [`QosFabricBuilder`] is that integration step for the simulated SoC:
//! declare each port's *role* once, pass the returned gate to
//! [`SocBuilder`](fgqos_sim::system::SocBuilder), and keep the
//! [`QosFabric`] as the software-side handle that can look up drivers by
//! name, reprogram whole partitions, build policies and render a
//! telemetry report.
//!
//! ```
//! use fgqos_core::fabric::QosFabricBuilder;
//! use fgqos_sim::prelude::*;
//!
//! let mut fabric = QosFabricBuilder::new();
//! let cpu_gate = fabric.critical_port("cpu", 1_000);
//! let dma_gate = fabric.best_effort_port("dma0", 1_000, 2_048);
//! let fabric = fabric.finish();
//!
//! let mut soc = SocBuilder::new(SocConfig::default())
//!     .gated_master("cpu", SequentialSource::reads(0, 256, 100), MasterKind::Cpu, cpu_gate)
//!     .gated_master(
//!         "dma0",
//!         SequentialSource::writes(1 << 28, 1024, u64::MAX),
//!         MasterKind::Accelerator,
//!         dma_gate,
//!     )
//!     .build();
//! soc.run(50_000);
//! assert!(fabric.driver("dma0").unwrap().telemetry().total_bytes > 0);
//! assert_eq!(fabric.critical_names(), vec!["cpu"]);
//! ```

use crate::driver::RegulatorDriver;
use crate::policy::{FeedbackController, ReclaimConfig, ReclaimPolicy};
use crate::regulator::{RegulatorConfig, TcRegulator};
use fgqos_sim::ForkCtx;
use std::fmt::Write as _;

/// Role of a port in the QoS partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortRole {
    /// Latency/throughput-protected actor: monitored, never throttled.
    Critical,
    /// Throughput-managed actor: regulated.
    BestEffort,
}

#[derive(Debug)]
struct PortEntry {
    name: String,
    role: PortRole,
    driver: RegulatorDriver,
}

/// Builder: declare ports, collect their gates.
#[derive(Debug, Default)]
pub struct QosFabricBuilder {
    ports: Vec<PortEntry>,
}

impl QosFabricBuilder {
    /// Starts an empty fabric.
    pub fn new() -> Self {
        QosFabricBuilder::default()
    }

    /// Declares a critical port: returns a monitor-only gate with the
    /// given telemetry window.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or the period is zero.
    pub fn critical_port(&mut self, name: impl Into<String>, period_cycles: u32) -> TcRegulator {
        let name = name.into();
        self.assert_fresh(&name);
        let (gate, driver) = TcRegulator::monitor_only(period_cycles);
        self.ports.push(PortEntry {
            name,
            role: PortRole::Critical,
            driver,
        });
        gate
    }

    /// Declares a regulated best-effort port with an initial budget.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or the period is zero.
    pub fn best_effort_port(
        &mut self,
        name: impl Into<String>,
        period_cycles: u32,
        budget_bytes: u32,
    ) -> TcRegulator {
        let name = name.into();
        self.assert_fresh(&name);
        let (gate, driver) = TcRegulator::create(RegulatorConfig {
            period_cycles,
            budget_bytes,
            enabled: true,
            ..RegulatorConfig::default()
        });
        self.ports.push(PortEntry {
            name,
            role: PortRole::BestEffort,
            driver,
        });
        gate
    }

    /// Declares a regulated port with full configuration control.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or the configuration is
    /// invalid.
    pub fn port_with_config(
        &mut self,
        name: impl Into<String>,
        role: PortRole,
        cfg: RegulatorConfig,
    ) -> TcRegulator {
        let name = name.into();
        self.assert_fresh(&name);
        let (gate, driver) = TcRegulator::create(cfg);
        self.ports.push(PortEntry { name, role, driver });
        gate
    }

    fn assert_fresh(&self, name: &str) {
        assert!(
            self.ports.iter().all(|p| p.name != name),
            "port name {name:?} already declared"
        );
    }

    /// Finalizes the fabric.
    ///
    /// # Panics
    ///
    /// Panics if no port was declared.
    pub fn finish(self) -> QosFabric {
        assert!(!self.ports.is_empty(), "fabric needs at least one port");
        QosFabric { ports: self.ports }
    }
}

/// The software-side handle over all regulator blocks of a system.
#[derive(Debug)]
pub struct QosFabric {
    ports: Vec<PortEntry>,
}

impl QosFabric {
    /// Number of declared ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Looks up a port's driver by name.
    pub fn driver(&self, name: &str) -> Option<&RegulatorDriver> {
        self.ports
            .iter()
            .find(|p| p.name == name)
            .map(|p| &p.driver)
    }

    /// A port's role by name.
    pub fn role(&self, name: &str) -> Option<PortRole> {
        self.ports.iter().find(|p| p.name == name).map(|p| p.role)
    }

    /// Names of all critical ports, in declaration order.
    pub fn critical_names(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.role == PortRole::Critical)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Names of all best-effort ports, in declaration order.
    pub fn best_effort_names(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.role == PortRole::BestEffort)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Drivers of all best-effort ports, in declaration order.
    pub fn best_effort_drivers(&self) -> Vec<RegulatorDriver> {
        self.ports
            .iter()
            .filter(|p| p.role == PortRole::BestEffort)
            .map(|p| p.driver.clone())
            .collect()
    }

    /// Programs every best-effort port to the same period/budget.
    pub fn set_best_effort_budgets(&self, period_cycles: u32, budget_bytes: u32) {
        for d in self.best_effort_drivers() {
            d.set_period_cycles(period_cycles);
            d.set_budget_bytes(budget_bytes);
            d.set_enabled(true);
        }
    }

    /// Builds a CMRI-style reclaim policy over this fabric: the first
    /// critical port's telemetry drives redistribution across all
    /// best-effort ports.
    ///
    /// # Panics
    ///
    /// Panics if the fabric has no critical or no best-effort port.
    pub fn reclaim_policy(&self, cfg: ReclaimConfig) -> ReclaimPolicy {
        let critical = self
            .ports
            .iter()
            .find(|p| p.role == PortRole::Critical)
            .expect("fabric has no critical port");
        ReclaimPolicy::new(critical.driver.clone(), self.best_effort_drivers(), cfg)
    }

    /// Builds an AIMD feedback controller over this fabric.
    ///
    /// # Panics
    ///
    /// Panics if the fabric has no critical or no best-effort port, or
    /// the AIMD parameters are inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn feedback_policy(
        &self,
        target_bytes_per_period: u64,
        initial_budget: u32,
        min_budget: u32,
        max_budget: u32,
        step: u32,
        control_period: u64,
    ) -> FeedbackController {
        let critical = self
            .ports
            .iter()
            .find(|p| p.role == PortRole::Critical)
            .expect("fabric has no critical port");
        FeedbackController::new(
            critical.driver.clone(),
            target_bytes_per_period,
            self.best_effort_drivers(),
            initial_budget,
            min_budget,
            max_budget,
            step,
            control_period,
        )
    }

    /// Rebinds every port driver to the register blocks `ctx` maps them
    /// to — the fabric-wide counterpart of
    /// [`RegulatorDriver::forked`]. Pass the same `ctx` used to fork the
    /// Soc and the returned fabric controls the forked gates.
    pub fn fork_rebound(&self, ctx: &mut ForkCtx) -> QosFabric {
        QosFabric {
            ports: self
                .ports
                .iter()
                .map(|p| PortEntry {
                    name: p.name.clone(),
                    role: p.role,
                    driver: p.driver.forked(ctx),
                })
                .collect(),
        }
    }

    /// Renders a one-line-per-port telemetry report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for p in &self.ports {
            let t = p.driver.telemetry();
            let role = match p.role {
                PortRole::Critical => "critical",
                PortRole::BestEffort => "best-effort",
            };
            let _ = writeln!(
                out,
                "{:<12} {:<11} bytes={:<12} txns={:<9} stalls={:<10} overshoot={}",
                p.name, role, t.total_bytes, t.total_txns, t.stall_cycles, t.max_overshoot
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> QosFabric {
        let mut b = QosFabricBuilder::new();
        let _ = b.critical_port("cpu", 1_000);
        let _ = b.best_effort_port("dma0", 1_000, 1_024);
        let _ = b.best_effort_port("dma1", 1_000, 2_048);
        b.finish()
    }

    #[test]
    fn lookup_by_name_and_role() {
        let f = fabric();
        assert_eq!(f.port_count(), 3);
        assert!(f.driver("cpu").is_some());
        assert!(f.driver("nope").is_none());
        assert_eq!(f.role("cpu"), Some(PortRole::Critical));
        assert_eq!(f.role("dma1"), Some(PortRole::BestEffort));
        assert_eq!(f.critical_names(), vec!["cpu"]);
        assert_eq!(f.best_effort_names(), vec!["dma0", "dma1"]);
    }

    #[test]
    fn critical_port_is_monitor_only() {
        let f = fabric();
        let d = f.driver("cpu").unwrap();
        assert!(!d.enabled());
        assert_eq!(d.budget_bytes(), u32::MAX);
    }

    #[test]
    fn best_effort_ports_start_enabled() {
        let f = fabric();
        assert!(f.driver("dma0").unwrap().enabled());
        assert_eq!(f.driver("dma1").unwrap().budget_bytes(), 2_048);
    }

    #[test]
    fn bulk_budget_programming() {
        let f = fabric();
        f.set_best_effort_budgets(500, 640);
        for name in f.best_effort_names() {
            let d = f.driver(name).unwrap();
            assert_eq!(d.period_cycles(), 500);
            assert_eq!(d.budget_bytes(), 640);
        }
        // Critical untouched.
        assert_eq!(f.driver("cpu").unwrap().period_cycles(), 1_000);
    }

    #[test]
    fn policies_constructible_from_fabric() {
        let f = fabric();
        let _reclaim = f.reclaim_policy(ReclaimConfig {
            critical_reserved: 1_000,
            be_base: 100,
            control_period: 5_000,
            ..ReclaimConfig::default()
        });
        let _feedback = f.feedback_policy(1_000, 512, 64, 4_096, 128, 5_000);
    }

    #[test]
    fn report_lists_every_port() {
        let f = fabric();
        let r = f.report();
        assert_eq!(r.lines().count(), 3);
        assert!(r.contains("cpu"));
        assert!(r.contains("best-effort"));
    }

    #[test]
    #[should_panic(expected = "already declared")]
    fn duplicate_names_rejected() {
        let mut b = QosFabricBuilder::new();
        let _ = b.critical_port("x", 1_000);
        let _ = b.best_effort_port("x", 1_000, 1_024);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn empty_fabric_rejected() {
        let _ = QosFabricBuilder::new().finish();
    }

    #[test]
    #[should_panic(expected = "no critical port")]
    fn reclaim_requires_critical() {
        let mut b = QosFabricBuilder::new();
        let _ = b.best_effort_port("dma", 1_000, 1_024);
        let f = b.finish();
        let _ = f.reclaim_policy(ReclaimConfig::default());
    }
}
