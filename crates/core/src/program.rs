//! Timed regulator re-programming and controller dropout.
//!
//! The runtime half of Scenario DSL v2 (`[phase]` and `[fault]` sections,
//! see `docs/scenario-format.md`):
//!
//! * [`ScenarioProgram`] replays a pre-compiled schedule of register
//!   writes — budget ramps, window-period changes, regulator
//!   enable/disable — against [`RegulatorDriver`]s at declared cycle
//!   boundaries;
//! * [`FusedController`] wraps any [`Controller`] and silences it from a
//!   declared cycle on, modeling a host policy loop crashing mid-run.
//!
//! Both are ordinary [`Controller`]s, so the simulation cores apply them
//! at calendar wake points: when a controller acts in a cycle the SoC
//! forces every master to reach that cycle first, which is what keeps a
//! phased scenario bit-identical between naive stepping and event-calendar
//! fast-forward.

use crate::driver::RegulatorDriver;
use fgqos_sim::system::Controller;
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, SnapDecodeError, SnapReader, StateHasher};

/// One register write a [`ScenarioProgram`] can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramOp {
    /// Program the regulator's per-window byte budget.
    Budget(u32),
    /// Program the regulator's window length in cycles (must be > 0).
    Period(u32),
    /// Enable or disable the regulator entirely.
    Enabled(bool),
}

impl ProgramOp {
    /// Applies the register write to `driver`.
    ///
    /// This is the single code path every regulator re-programming goes
    /// through — `[phase]` directives replayed by [`ScenarioProgram`] and
    /// live control writes injected between run segments both land here,
    /// which is what makes a recorded control journal replayable as
    /// synthesized phase entries with bit-identical effect.
    ///
    /// # Panics
    ///
    /// Panics on [`ProgramOp::Period`]\(0\) — the regulator rejects
    /// zero-length windows ([`ScenarioProgram::new`] screens its
    /// schedule up front; ad-hoc callers get the same check here).
    pub fn apply(&self, driver: &RegulatorDriver) {
        match *self {
            ProgramOp::Budget(b) => driver.set_budget_bytes(b),
            ProgramOp::Period(p) => {
                assert!(p > 0, "cannot program a zero window period");
                driver.set_period_cycles(p);
            }
            ProgramOp::Enabled(e) => driver.set_enabled(e),
        }
    }
}

/// A [`ProgramOp`] bound to a driver and a fire cycle.
#[derive(Debug, Clone)]
pub struct TimedOp {
    /// Cycle at which the write is applied (the op fires at the first
    /// controller activation at or after this cycle).
    pub at: u64,
    /// Driver of the regulator to reprogram.
    pub driver: RegulatorDriver,
    /// The register write.
    pub op: ProgramOp,
}

/// A [`Controller`] that replays a schedule of timed register writes.
///
/// Ops are applied in `at` order; ops sharing a fire cycle are applied in
/// declaration order (the sort is stable). Once every op has fired the
/// program reports no further activity, so it costs the event calendar
/// nothing for the rest of the run.
#[derive(Debug)]
pub struct ScenarioProgram {
    ops: Vec<TimedOp>,
    applied: usize,
}

impl ScenarioProgram {
    /// Builds a program from a schedule; ops are stable-sorted by `at`.
    ///
    /// # Panics
    ///
    /// Panics if any [`ProgramOp::Period`] op carries 0 (the regulator
    /// rejects zero-length windows).
    pub fn new(mut ops: Vec<TimedOp>) -> Self {
        assert!(
            !ops.iter().any(|o| o.op == ProgramOp::Period(0)),
            "scenario program cannot set a zero window period"
        );
        ops.sort_by_key(|o| o.at);
        ScenarioProgram { ops, applied: 0 }
    }

    /// Number of ops applied so far.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Total ops in the schedule.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Controller for ScenarioProgram {
    fn on_cycle(&mut self, now: Cycle) {
        while let Some(t) = self.ops.get(self.applied) {
            if t.at > now.get() {
                break;
            }
            t.op.apply(&t.driver);
            self.applied += 1;
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        self.ops
            .get(self.applied)
            .map(|t| Cycle::new(t.at).max(now))
    }

    fn leap_support(&self, _now: Cycle) -> fgqos_sim::LeapSupport {
        // Each pending op is a one-shot absolute-time behavior change;
        // the next unapplied op's fire cycle bounds any leap. With the
        // schedule exhausted the program is inert.
        match self.ops.get(self.applied) {
            Some(t) => fgqos_sim::LeapSupport::until(Cycle::new(t.at)),
            None => fgqos_sim::LeapSupport::clear(),
        }
    }

    fn label(&self) -> &'static str {
        "scenario-program"
    }

    fn fork_ctrl(&self, ctx: &mut ForkCtx) -> Option<Box<dyn Controller>> {
        Some(Box::new(ScenarioProgram {
            ops: self
                .ops
                .iter()
                .map(|t| TimedOp {
                    at: t.at,
                    driver: t.driver.forked(ctx),
                    op: t.op,
                })
                .collect(),
            applied: self.applied,
        }))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        // Hash (and serialize) the *pending* op count, not the list
        // length: a program that replayed a control journal as extra
        // `[phase]` ops and one whose writes arrived live both end
        // fully drained, and from there on they behave identically —
        // which is exactly what equal fingerprints promise. The live
        // replay byte/bit-identity tests pin this equivalence.
        h.section("scenario-program");
        h.write_usize(self.ops.len() - self.applied);
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("scenario-program")?;
        let at = r.position();
        let pending = r.read_usize("program pending op count")?;
        if pending > self.ops.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "{pending} pending program op(s) in stream, skeleton has only {}",
                    self.ops.len()
                ),
                at,
            });
        }
        self.applied = self.ops.len() - pending;
        Ok(())
    }
}

/// A [`Controller`] wrapper that stops calling its inner controller from
/// a declared cycle on — a host policy loop crashing mid-run (the
/// `controller off` fault of the scenario DSL).
///
/// Budgets programmed before the fuse blows stay in force: nothing
/// un-programs the regulators, exactly as on real hardware.
pub struct FusedController {
    inner: Box<dyn Controller>,
    until: u64,
}

impl FusedController {
    /// Wraps `inner`, silencing it at cycle `until` and after.
    pub fn new(inner: impl Controller + 'static, until: u64) -> Self {
        FusedController {
            inner: Box::new(inner),
            until,
        }
    }
}

impl Controller for FusedController {
    fn on_cycle(&mut self, now: Cycle) {
        if now.get() < self.until {
            self.inner.on_cycle(now);
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if now.get() >= self.until {
            return None;
        }
        self.inner
            .next_activity(now)
            .filter(|c| c.get() < self.until)
    }

    fn leap_support(&self, now: Cycle) -> fgqos_sim::LeapSupport {
        if now.get() >= self.until {
            // Blown fuse: the inner controller is never called again, so
            // its state is frozen (plain snapshot fields) and nothing
            // here depends on absolute time anymore.
            fgqos_sim::LeapSupport::clear()
        } else {
            self.inner
                .leap_support(now)
                .merge(fgqos_sim::LeapSupport::until(Cycle::new(self.until)))
        }
    }

    fn label(&self) -> &'static str {
        "fused"
    }

    fn fork_ctrl(&self, ctx: &mut ForkCtx) -> Option<Box<dyn Controller>> {
        let inner = self.inner.fork_ctrl(ctx)?;
        Some(Box::new(FusedController {
            inner,
            until: self.until,
        }))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("fused");
        h.write_u64(self.until);
        self.inner.snap_state(h);
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("fused")?;
        let at = r.position();
        let until = r.read_u64("fuse cycle")?;
        if until != self.until {
            return Err(SnapDecodeError::BadValue {
                what: format!("fuse cycle {until} in stream, skeleton has {}", self.until),
                at,
            });
        }
        self.inner.snap_load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::QosFabricBuilder;
    use crate::QosFabric;

    fn fabric() -> QosFabric {
        let mut b = QosFabricBuilder::new();
        let _ = b.best_effort_port("dma", 1_000, 4_096);
        b.finish()
    }

    #[test]
    fn applies_ops_in_order_and_goes_quiet() {
        let f = fabric();
        let d = f.driver("dma").unwrap().clone();
        let mut p = ScenarioProgram::new(vec![
            TimedOp {
                at: 500,
                driver: d.clone(),
                op: ProgramOp::Budget(8_192),
            },
            TimedOp {
                at: 100,
                driver: d.clone(),
                op: ProgramOp::Budget(2_048),
            },
        ]);
        assert_eq!(p.next_activity(Cycle::ZERO), Some(Cycle::new(100)));
        p.on_cycle(Cycle::new(100));
        assert_eq!(d.budget_bytes(), 2_048);
        assert_eq!(p.next_activity(Cycle::new(100)), Some(Cycle::new(500)));
        p.on_cycle(Cycle::new(700));
        assert_eq!(d.budget_bytes(), 8_192);
        assert_eq!(p.applied(), 2);
        assert_eq!(p.next_activity(Cycle::new(700)), None);
    }

    #[test]
    fn same_cycle_ops_apply_in_declaration_order() {
        let f = fabric();
        let d = f.driver("dma").unwrap().clone();
        let mut p = ScenarioProgram::new(vec![
            TimedOp {
                at: 100,
                driver: d.clone(),
                op: ProgramOp::Budget(1),
            },
            TimedOp {
                at: 100,
                driver: d.clone(),
                op: ProgramOp::Budget(2),
            },
        ]);
        p.on_cycle(Cycle::new(100));
        assert_eq!(d.budget_bytes(), 2, "later declaration wins a tie");
    }

    #[test]
    fn program_snapshot_roundtrips() {
        let f = fabric();
        let d = f.driver("dma").unwrap().clone();
        let mk = |drv: &RegulatorDriver| {
            ScenarioProgram::new(vec![TimedOp {
                at: 100,
                driver: drv.clone(),
                op: ProgramOp::Enabled(false),
            }])
        };
        let mut a = mk(&d);
        a.on_cycle(Cycle::new(100));
        let mut h = StateHasher::recording();
        a.snap_state(&mut h);
        let bytes = h.take_bytes();
        let mut b = mk(&d);
        let mut r = SnapReader::new(&bytes);
        b.snap_load(&mut r).expect("loads");
        r.expect_end().expect("stream fully consumed");
        assert_eq!(b.applied(), 1);
    }

    #[test]
    fn fuse_silences_inner_at_cycle() {
        let f = fabric();
        let d = f.driver("dma").unwrap().clone();
        let inner = ScenarioProgram::new(vec![TimedOp {
            at: 2_000,
            driver: d.clone(),
            op: ProgramOp::Budget(1_024),
        }]);
        let mut fused = FusedController::new(inner, 1_000);
        // The inner op is scheduled past the fuse: never visible.
        assert_eq!(fused.next_activity(Cycle::ZERO), None);
        fused.on_cycle(Cycle::new(2_000));
        assert_eq!(d.budget_bytes(), 4_096, "write after the fuse is dropped");
    }
}
