//! Analytic FPGA resource model of the regulator IP.
//!
//! The real paper reports post-synthesis LUT/FF/BRAM utilization of the
//! monitoring/regulation IP on a Xilinx ZU9EG. We cannot synthesize RTL
//! here, but this class of IP has a structurally determined cost — it is
//! counters, comparators and an AXI-Lite endpoint — so an analytic model
//! reproduces the table's message: the per-port cost is a fraction of a
//! percent of the device and scales linearly with the number of regulated
//! ports. The coefficients below are calibrated against published sizes
//! of comparable open AXI performance-monitor/regulator IPs (Xilinx AXI
//! Performance Monitor, MemGuard-FPGA ports).

/// Structural parameters of one regulator instance.
#[derive(Debug, Clone, Copy)]
pub struct ResourceModel {
    /// Width of the telemetry counters in bits (total bytes, total
    /// transactions, stall cycles are this wide; window counters are 32).
    pub counter_width: u32,
    /// Number of wide telemetry counters.
    pub wide_counters: u32,
    /// Number of 32-bit window/config registers.
    pub word_registers: u32,
    /// Depth of the optional per-window history buffer (entries of
    /// 64 bits); 0 disables it and uses no BRAM.
    pub history_depth: u32,
}

impl Default for ResourceModel {
    /// The configuration evaluated in the experiments: 48-bit totals,
    /// 3 wide counters (bytes, transactions, stalls), 8 word registers,
    /// no history buffer.
    fn default() -> Self {
        ResourceModel {
            counter_width: 48,
            wide_counters: 3,
            word_registers: 8,
            history_depth: 0,
        }
    }
}

/// LUT/FF/BRAM estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceEstimate {
    /// 6-input LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// BRAM36 blocks.
    pub bram36: u64,
}

impl ResourceEstimate {
    /// Component-wise sum.
    pub fn plus(self, other: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            bram36: self.bram36 + other.bram36,
        }
    }

    /// Component-wise scaling by an integer count.
    pub fn times(self, n: u64) -> ResourceEstimate {
        ResourceEstimate {
            luts: self.luts * n,
            ffs: self.ffs * n,
            bram36: self.bram36 * n,
        }
    }
}

impl ResourceModel {
    /// Estimated cost of one regulator instance (one AXI port).
    pub fn per_port(&self) -> ResourceEstimate {
        let w = self.counter_width as u64;
        let wide = self.wide_counters as u64;
        let words = self.word_registers as u64;
        // FFs: counter state + word registers + handshake/gating state.
        let ffs = wide * w + words * 32 + 24;
        // LUTs: one adder per wide counter (~w/2 LUTs with carry chains),
        // budget comparator + window comparator (~w), AXI-Lite address
        // decode and read mux (~12 per word register), gating logic.
        let luts = wide * (w / 2) + 2 * w + words * 12 + 40;
        // BRAM: 64-bit history entries packed into BRAM36 blocks.
        let bram_bits = self.history_depth as u64 * 64;
        let bram36 = bram_bits.div_ceil(36 * 1024);
        ResourceEstimate { luts, ffs, bram36 }
    }

    /// Estimated cost of `ports` regulator instances plus the shared
    /// AXI-Lite configuration interconnect.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn for_ports(&self, ports: usize) -> ResourceEstimate {
        assert!(ports > 0, "need at least one port");
        let shared = ResourceEstimate {
            luts: 180,
            ffs: 120,
            bram36: 0,
        };
        self.per_port().times(ports as u64).plus(shared)
    }
}

/// Resource capacity of the Xilinx ZU9EG (the ZCU102 device used by the
/// paper's evaluation board).
#[derive(Debug, Clone, Copy, Default)]
pub struct Zu9egBudget;

impl Zu9egBudget {
    /// Device LUT capacity.
    pub const LUTS: u64 = 274_080;
    /// Device flip-flop capacity.
    pub const FFS: u64 = 548_160;
    /// Device BRAM36 capacity.
    pub const BRAM36: u64 = 912;

    /// Utilization percentages (LUT, FF, BRAM) of an estimate.
    pub fn utilization(est: ResourceEstimate) -> (f64, f64, f64) {
        (
            est.luts as f64 * 100.0 / Self::LUTS as f64,
            est.ffs as f64 * 100.0 / Self::FFS as f64,
            est.bram36 as f64 * 100.0 / Self::BRAM36 as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_port_cost_is_small() {
        let est = ResourceModel::default().per_port();
        // A regulator is a few hundred LUTs/FFs — well under 0.5 % of the
        // device. This is the headline of the paper's resource table.
        assert!(est.luts < 1_000, "LUTs {}", est.luts);
        assert!(est.ffs < 1_000, "FFs {}", est.ffs);
        assert_eq!(est.bram36, 0);
        let (l, f, b) = Zu9egBudget::utilization(est);
        assert!(l < 0.5 && f < 0.5 && b == 0.0);
    }

    #[test]
    fn cost_scales_linearly_with_ports() {
        let m = ResourceModel::default();
        let one = m.for_ports(1);
        let four = m.for_ports(4);
        let eight = m.for_ports(8);
        // Remove the shared part and check linearity.
        let delta41 = four.luts - one.luts;
        let delta84 = eight.luts - four.luts;
        assert_eq!(delta41 / 3, delta84 / 4);
        assert!(eight.luts < one.luts * 8 + 200);
    }

    #[test]
    fn history_buffer_uses_bram() {
        let m = ResourceModel {
            history_depth: 4096,
            ..ResourceModel::default()
        };
        let est = m.per_port();
        assert!(
            est.bram36 >= 7,
            "4096×64b needs ≥7 BRAM36, got {}",
            est.bram36
        );
    }

    #[test]
    fn wider_counters_cost_more() {
        let narrow = ResourceModel {
            counter_width: 32,
            ..ResourceModel::default()
        };
        let wide = ResourceModel {
            counter_width: 64,
            ..ResourceModel::default()
        };
        assert!(wide.per_port().luts > narrow.per_port().luts);
        assert!(wide.per_port().ffs > narrow.per_port().ffs);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = ResourceModel::default().for_ports(0);
    }

    #[test]
    fn estimate_arithmetic() {
        let a = ResourceEstimate {
            luts: 1,
            ffs: 2,
            bram36: 3,
        };
        let b = a.times(2).plus(a);
        assert_eq!(
            b,
            ResourceEstimate {
                luts: 3,
                ffs: 6,
                bram36: 9
            }
        );
    }
}
