//! Leaky-bucket (token-bucket) regulator variant.
//!
//! The window regulator replenishes its whole budget at once, so a
//! backlogged master drains each window's budget back-to-back at the
//! window start. A token bucket replenishes *continuously* (budget/period
//! bytes per cycle) and caps the accumulated credit at a configurable
//! depth, trading the window's crisp per-window guarantee ("never more
//! than Q bytes in any aligned window") for smoother injection ("never
//! more than depth + rate·Δ bytes in any interval").
//!
//! The paper's IP uses windows — this variant exists for the design-space
//! ablation (`exp_ablations` / `benches/ablations.rs`): same average
//! bandwidth, different burst structure.

use crate::regulator::OvershootPolicy;
use fgqos_sim::axi::Request;
use fgqos_sim::gate::{GateDecision, PortGate};
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, SnapDecodeError, SnapReader, StateHasher};

/// Configuration of a [`LeakyBucketRegulator`].
#[derive(Debug, Clone, Copy)]
pub struct BucketConfig {
    /// Refill rate numerator: `budget_bytes` per `period_cycles` cycles
    /// (the same pair a window regulator takes, for comparability).
    pub budget_bytes: u32,
    /// Refill rate denominator in cycles.
    pub period_cycles: u32,
    /// Maximum accumulated credit in bytes (the burst the bucket allows
    /// after an idle stretch). A common choice is one window's budget.
    pub depth_bytes: u32,
    /// Overshoot handling at the admission decision.
    pub overshoot: OvershootPolicy,
}

impl Default for BucketConfig {
    fn default() -> Self {
        BucketConfig {
            budget_bytes: 1024,
            period_cycles: 1024,
            depth_bytes: 1024,
            overshoot: OvershootPolicy::Conservative,
        }
    }
}

/// Token-bucket admission gate. See the [module docs](self).
///
/// ```
/// use fgqos_core::bucket::{BucketConfig, LeakyBucketRegulator};
/// use fgqos_sim::gate::PortGate;
/// use fgqos_sim::time::Cycle;
///
/// let mut bucket = LeakyBucketRegulator::new(BucketConfig {
///     budget_bytes: 1_000,   // 1 byte/cycle...
///     period_cycles: 1_000,  // ...replenished continuously
///     depth_bytes: 2_048,
///     ..BucketConfig::default()
/// });
/// assert_eq!(bucket.tokens(), 2_048); // starts full
/// bucket.on_cycle(Cycle::new(500));
/// assert_eq!(bucket.tokens(), 2_048); // capped at the depth
/// ```
#[derive(Debug, Clone)]
pub struct LeakyBucketRegulator {
    cfg: BucketConfig,
    tokens: u64,
    carry: u64,
    last_tick: Cycle,
    stall_cycles: u64,
    total_bytes: u64,
}

impl LeakyBucketRegulator {
    /// Creates a full bucket.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero or the depth is zero.
    pub fn new(cfg: BucketConfig) -> Self {
        assert!(cfg.period_cycles > 0, "refill period must be non-zero");
        assert!(cfg.depth_bytes > 0, "bucket depth must be non-zero");
        LeakyBucketRegulator {
            cfg,
            tokens: cfg.depth_bytes as u64,
            carry: 0,
            last_tick: Cycle::ZERO,
            stall_cycles: 0,
            total_bytes: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &BucketConfig {
        &self.cfg
    }

    /// Currently available credit in bytes.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Cycles spent denying the handshake.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Lifetime accepted bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    fn refill(&mut self, now: Cycle) {
        let elapsed = now.saturating_since(self.last_tick);
        if elapsed == 0 {
            return;
        }
        self.last_tick = now;
        // tokens += elapsed * budget / period, with exact remainder carry.
        let numer = self.carry + elapsed as u128 as u64 * self.cfg.budget_bytes as u64;
        let whole = numer / self.cfg.period_cycles as u64;
        self.carry = numer % self.cfg.period_cycles as u64;
        self.tokens = (self.tokens + whole).min(self.cfg.depth_bytes as u64);
    }
}

impl PortGate for LeakyBucketRegulator {
    fn on_cycle(&mut self, now: Cycle) {
        self.refill(now);
    }

    fn try_accept(&mut self, request: &Request, _now: Cycle) -> GateDecision {
        let bytes = request.bytes();
        let admit = match self.cfg.overshoot {
            OvershootPolicy::Conservative => self.tokens >= bytes,
            OvershootPolicy::FinalBurst => self.tokens > 0,
        };
        if admit {
            self.tokens = self.tokens.saturating_sub(bytes);
            self.total_bytes += bytes;
            GateDecision::Accept
        } else {
            self.stall_cycles += 1;
            GateDecision::Deny
        }
    }

    fn label(&self) -> &'static str {
        "leaky-bucket"
    }

    fn fork_gate(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn PortGate>> {
        Some(Box::new(self.clone()))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("leaky-bucket");
        h.write_u32(self.cfg.budget_bytes);
        h.write_u32(self.cfg.period_cycles);
        h.write_u32(self.cfg.depth_bytes);
        h.write_bool(self.cfg.overshoot == OvershootPolicy::FinalBurst);
        h.write_u64(self.tokens);
        h.write_u64(self.carry);
        h.write_u64(self.last_tick.get());
        h.write_u64(self.stall_cycles);
        h.write_u64(self.total_bytes);
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("leaky-bucket")?;
        // Configuration travels in the stream for verification only: the
        // skeleton this state loads into must match it.
        for (what, built) in [
            ("leaky-bucket budget_bytes", self.cfg.budget_bytes),
            ("leaky-bucket period_cycles", self.cfg.period_cycles),
            ("leaky-bucket depth_bytes", self.cfg.depth_bytes),
        ] {
            let at = r.position();
            let streamed = r.read_u32(what)?;
            if streamed != built {
                return Err(SnapDecodeError::BadValue {
                    what: format!("{what} {streamed} in stream, skeleton has {built}"),
                    at,
                });
            }
        }
        let at = r.position();
        let final_burst = r.read_bool("leaky-bucket overshoot policy")?;
        if final_burst != (self.cfg.overshoot == OvershootPolicy::FinalBurst) {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "leaky-bucket overshoot policy {:?} in stream, skeleton has {:?}",
                    final_burst,
                    self.cfg.overshoot == OvershootPolicy::FinalBurst
                ),
                at,
            });
        }
        self.tokens = r.read_u64("leaky-bucket tokens")?;
        self.carry = r.read_u64("leaky-bucket carry")?;
        self.last_tick = Cycle::new(r.read_u64("leaky-bucket last_tick")?);
        self.stall_cycles = r.read_u64("leaky-bucket stall_cycles")?;
        self.total_bytes = r.read_u64("leaky-bucket total_bytes")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_sim::axi::{Dir, MasterId};

    fn req(serial: u64, bytes: u64) -> Request {
        let beats = (bytes / fgqos_sim::axi::BEAT_BYTES) as u16;
        Request::new(
            MasterId::new(0),
            serial,
            serial * 4096,
            beats,
            Dir::Read,
            Cycle::ZERO,
        )
    }

    fn bucket(budget: u32, period: u32, depth: u32) -> LeakyBucketRegulator {
        LeakyBucketRegulator::new(BucketConfig {
            budget_bytes: budget,
            period_cycles: period,
            depth_bytes: depth,
            overshoot: OvershootPolicy::Conservative,
        })
    }

    #[test]
    fn starts_full_and_debits() {
        let mut b = bucket(1_000, 1_000, 512);
        assert_eq!(b.tokens(), 512);
        assert!(b.try_accept(&req(0, 512), Cycle::ZERO).is_accept());
        assert_eq!(b.tokens(), 0);
        assert_eq!(b.try_accept(&req(1, 16), Cycle::ZERO), GateDecision::Deny);
        assert_eq!(b.stall_cycles(), 1);
    }

    #[test]
    fn refills_continuously() {
        let mut b = bucket(1_000, 1_000, 10_000);
        let _ = b.try_accept(&req(0, 4_096), Cycle::ZERO); // drain some
        let before = b.tokens();
        // 1 byte/cycle refill: after 100 cycles, +100 bytes.
        b.on_cycle(Cycle::new(100));
        assert_eq!(b.tokens(), before + 100);
        b.on_cycle(Cycle::new(150));
        assert_eq!(b.tokens(), before + 150);
    }

    #[test]
    fn fractional_rate_carries_remainder() {
        // 3 bytes per 7 cycles: after 7 cycles exactly 3 tokens.
        let mut b = bucket(3, 7, 100);
        let _ = b.try_accept(&req(0, 96), Cycle::ZERO);
        let base = b.tokens();
        for t in 1..=7u64 {
            b.on_cycle(Cycle::new(t));
        }
        assert_eq!(b.tokens(), base + 3);
        for t in 8..=14u64 {
            b.on_cycle(Cycle::new(t));
        }
        assert_eq!(b.tokens(), base + 6);
    }

    #[test]
    fn credit_caps_at_depth() {
        let mut b = bucket(1_000, 1_000, 2_048);
        b.on_cycle(Cycle::new(1_000_000));
        assert_eq!(b.tokens(), 2_048, "idle credit must cap at the depth");
    }

    #[test]
    fn long_run_rate_matches_configuration() {
        // Greedy 256 B requests against a 1 B/cycle bucket: accepted bytes
        // over 100k cycles must be ~100k (+ the initial depth).
        let mut b = bucket(1_000, 1_000, 1_024);
        let mut serial = 0;
        for t in 0..100_000u64 {
            b.on_cycle(Cycle::new(t));
            let r = req(serial, 256);
            if b.try_accept(&r, Cycle::new(t)).is_accept() {
                serial += 1;
            }
        }
        let total = b.total_bytes();
        assert!(
            (100_000..=101_500).contains(&total),
            "long-run rate off: {total} bytes in 100k cycles"
        );
    }

    #[test]
    fn final_burst_mode_allows_overdraft_once() {
        let mut b = LeakyBucketRegulator::new(BucketConfig {
            budget_bytes: 1_000,
            period_cycles: 1_000,
            depth_bytes: 100,
            overshoot: OvershootPolicy::FinalBurst,
        });
        // 100 tokens but a 256-byte request: admitted (tokens > 0), then
        // the bucket is empty and further requests are denied.
        assert!(b.try_accept(&req(0, 256), Cycle::ZERO).is_accept());
        assert_eq!(b.try_accept(&req(1, 16), Cycle::ZERO), GateDecision::Deny);
    }

    #[test]
    #[should_panic(expected = "depth must be non-zero")]
    fn zero_depth_rejected() {
        let _ = bucket(1, 1, 0);
    }
}
