//! Host-software QoS policies.
//!
//! These are the software half of the paper's stack: periodic routines on
//! the host CPU that read tightly-coupled telemetry and reprogram budgets
//! through [`RegulatorDriver`]s. They plug into the simulation as
//! [`Controller`]s.
//!
//! Three policies are provided:
//!
//! * [`StaticPartition`] — program fixed budgets once (the classic
//!   bandwidth-partitioning baseline configuration),
//! * [`ReclaimPolicy`] — CMRI-style: bandwidth reserved for a critical
//!   actor but not consumed in the last control period is redistributed
//!   to best-effort ports for the next one,
//! * [`FeedbackController`] — AIMD control: hold a critical actor's
//!   observed throughput above a target by shrinking (multiplicatively)
//!   or growing (additively) the best-effort budgets.

use crate::driver::RegulatorDriver;
use fgqos_sim::system::Controller;
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, StateHasher};

/// One port assignment for [`StaticPartition`].
#[derive(Debug, Clone)]
pub struct PortBudget {
    /// Driver of the port's regulator.
    pub driver: RegulatorDriver,
    /// Window length to program, in cycles.
    pub period_cycles: u32,
    /// Byte budget per window.
    pub budget_bytes: u32,
}

/// Programs a fixed bandwidth partition at simulation start.
#[derive(Debug)]
pub struct StaticPartition {
    ports: Vec<PortBudget>,
    programmed: bool,
}

impl StaticPartition {
    /// Creates a partition from per-port assignments.
    pub fn new(ports: Vec<PortBudget>) -> Self {
        StaticPartition {
            ports,
            programmed: false,
        }
    }
}

impl Controller for StaticPartition {
    fn on_cycle(&mut self, _now: Cycle) {
        if self.programmed {
            return;
        }
        for p in &self.ports {
            p.driver.set_period_cycles(p.period_cycles);
            p.driver.set_budget_bytes(p.budget_bytes);
            p.driver.set_enabled(true);
        }
        self.programmed = true;
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.programmed {
            None
        } else {
            Some(now)
        }
    }

    fn label(&self) -> &'static str {
        "static-partition"
    }

    fn fork_ctrl(&self, ctx: &mut ForkCtx) -> Option<Box<dyn Controller>> {
        Some(Box::new(StaticPartition {
            ports: self
                .ports
                .iter()
                .map(|p| PortBudget {
                    driver: p.driver.forked(ctx),
                    period_cycles: p.period_cycles,
                    budget_bytes: p.budget_bytes,
                })
                .collect(),
            programmed: self.programmed,
        }))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("static-partition");
        h.write_usize(self.ports.len());
        for p in &self.ports {
            h.write_u32(p.period_cycles);
            h.write_u32(p.budget_bytes);
        }
        h.write_bool(self.programmed);
    }

    fn snap_load(
        &mut self,
        r: &mut fgqos_sim::SnapReader<'_>,
    ) -> Result<(), fgqos_sim::SnapDecodeError> {
        use fgqos_sim::SnapDecodeError;
        r.section("static-partition")?;
        let at = r.position();
        let n = r.read_usize("static-partition port count")?;
        if n != self.ports.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "static-partition has {n} port(s) in stream, skeleton has {}",
                    self.ports.len()
                ),
                at,
            });
        }
        for (i, p) in self.ports.iter_mut().enumerate() {
            let at = r.position();
            let period = r.read_u32("static-partition period")?;
            let budget = r.read_u32("static-partition budget")?;
            if period != p.period_cycles || budget != p.budget_bytes {
                return Err(SnapDecodeError::BadValue {
                    what: format!(
                        "static-partition port {i} plan ({period}, {budget}) in stream, \
                         skeleton has ({}, {})",
                        p.period_cycles, p.budget_bytes
                    ),
                    at,
                });
            }
        }
        self.programmed = r.read_bool("static-partition programmed")?;
        Ok(())
    }
}

/// Configuration of a [`ReclaimPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct ReclaimConfig {
    /// Bytes per control period reserved for the critical actor.
    pub critical_reserved: u64,
    /// Guaranteed bytes per control period for each best-effort port.
    pub be_base: u64,
    /// Software decision interval in cycles.
    pub control_period: u64,
    /// Multiplier applied to the redistributed slack. `1` lends out
    /// exactly the unused bytes; larger values treat critical
    /// *inactivity* as evidence of system-wide slack (the critical
    /// actor's protection costs far more bandwidth than it consumes, so
    /// an idle critical frees much more than its own bytes).
    pub gain: u64,
    /// If set, reclaim is suppressed entirely for a period in which the
    /// critical actor moved at least this many bytes (fast clamp on
    /// phase transitions).
    pub busy_threshold: Option<u64>,
}

impl Default for ReclaimConfig {
    fn default() -> Self {
        ReclaimConfig {
            critical_reserved: 0,
            be_base: 0,
            control_period: 10_000,
            gain: 1,
            busy_threshold: None,
        }
    }
}

/// CMRI-style reclaim: unused critical bandwidth is lent to best-effort
/// ports one control period at a time.
///
/// Every `control_period` cycles the policy reads how many bytes the
/// critical port actually moved, computes the unused share of its
/// reservation, and raises each best-effort port's budget by an equal
/// split of the (gain-scaled) slack on top of its guaranteed base. A
/// critical phase change reclaims the slack at the next control period;
/// with [`ReclaimConfig::busy_threshold`] set, any sign of critical
/// activity clamps the best-effort ports straight back to their base.
#[derive(Debug)]
pub struct ReclaimPolicy {
    critical: RegulatorDriver,
    best_effort: Vec<RegulatorDriver>,
    cfg: ReclaimConfig,
    next_at: u64,
    last_crit_total: u64,
}

impl ReclaimPolicy {
    /// Creates a reclaim policy over the critical port's (monitor-only)
    /// driver and the regulated best-effort ports.
    ///
    /// # Panics
    ///
    /// Panics if the control period is zero, the gain is zero, or
    /// `best_effort` is empty.
    pub fn new(
        critical: RegulatorDriver,
        best_effort: Vec<RegulatorDriver>,
        cfg: ReclaimConfig,
    ) -> Self {
        assert!(cfg.control_period > 0, "control period must be non-zero");
        assert!(cfg.gain > 0, "gain must be non-zero");
        assert!(
            !best_effort.is_empty(),
            "reclaim needs at least one best-effort port"
        );
        ReclaimPolicy {
            critical,
            best_effort,
            cfg,
            next_at: 0,
            last_crit_total: 0,
        }
    }

    fn program_best_effort(&self, bytes_per_period: u64) {
        for be in &self.best_effort {
            let windows = (self.cfg.control_period / be.period_cycles().max(1) as u64).max(1);
            let budget = (bytes_per_period / windows).min(u32::MAX as u64) as u32;
            be.set_budget_bytes(budget);
            be.set_enabled(true);
        }
    }
}

impl Controller for ReclaimPolicy {
    fn on_cycle(&mut self, now: Cycle) {
        if now.get() < self.next_at {
            return;
        }
        self.next_at = now.get() + self.cfg.control_period;
        let crit_total = self.critical.telemetry().total_bytes;
        let crit_used = crit_total - self.last_crit_total;
        self.last_crit_total = crit_total;
        let busy = self.cfg.busy_threshold.is_some_and(|t| crit_used >= t);
        let extra = if busy {
            0
        } else {
            let unused = self.cfg.critical_reserved.saturating_sub(crit_used);
            self.cfg.gain * unused / self.best_effort.len() as u64
        };
        self.program_best_effort(self.cfg.be_base + extra);
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        Some(Cycle::new(self.next_at).max(now))
    }

    fn label(&self) -> &'static str {
        "reclaim"
    }

    fn fork_ctrl(&self, ctx: &mut ForkCtx) -> Option<Box<dyn Controller>> {
        Some(Box::new(ReclaimPolicy {
            critical: self.critical.forked(ctx),
            best_effort: self.best_effort.iter().map(|d| d.forked(ctx)).collect(),
            cfg: self.cfg,
            next_at: self.next_at,
            last_crit_total: self.last_crit_total,
        }))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("reclaim");
        h.write_usize(self.best_effort.len());
        h.write_u64(self.cfg.critical_reserved);
        h.write_u64(self.cfg.be_base);
        h.write_u64(self.cfg.control_period);
        h.write_u64(self.cfg.gain);
        match self.cfg.busy_threshold {
            None => h.write_bool(false),
            Some(t) => {
                h.write_bool(true);
                h.write_u64(t);
            }
        }
        h.write_u64(self.next_at);
        h.write_u64(self.last_crit_total);
    }

    fn snap_load(
        &mut self,
        r: &mut fgqos_sim::SnapReader<'_>,
    ) -> Result<(), fgqos_sim::SnapDecodeError> {
        use fgqos_sim::SnapDecodeError;
        r.section("reclaim")?;
        let at = r.position();
        let n = r.read_usize("reclaim best-effort count")?;
        if n != self.best_effort.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "reclaim has {n} best-effort port(s) in stream, skeleton has {}",
                    self.best_effort.len()
                ),
                at,
            });
        }
        self.cfg.critical_reserved = r.read_u64("reclaim critical_reserved")?;
        self.cfg.be_base = r.read_u64("reclaim be_base")?;
        self.cfg.control_period = r.read_u64("reclaim control_period")?;
        self.cfg.gain = r.read_u64("reclaim gain")?;
        self.cfg.busy_threshold = if r.read_bool("reclaim busy_threshold flag")? {
            Some(r.read_u64("reclaim busy_threshold")?)
        } else {
            None
        };
        self.next_at = r.read_u64("reclaim next_at")?;
        self.last_crit_total = r.read_u64("reclaim last_crit_total")?;
        Ok(())
    }
}

/// AIMD feedback controller protecting a critical actor's throughput.
///
/// The controller never touches the critical port; it observes its
/// achieved bytes per control period and squeezes the *best-effort*
/// budgets when the critical actor falls below target (multiplicative
/// decrease), relaxing them additively while the target is met. This is
/// the closed-loop mode of the paper's runtime: the QoS target is stated
/// for the critical task, the enforcement lands on everyone else.
#[derive(Debug)]
pub struct FeedbackController {
    critical: RegulatorDriver,
    target_bytes_per_period: u64,
    best_effort: Vec<RegulatorDriver>,
    be_budget: u32,
    min_budget: u32,
    max_budget: u32,
    step: u32,
    control_period: u64,
    next_at: u64,
    last_crit_total: u64,
    adjustments: u64,
}

impl FeedbackController {
    /// Creates a feedback controller.
    ///
    /// * `target_bytes_per_period` — minimum bytes the critical actor
    ///   must achieve per `control_period` cycles.
    /// * `initial_budget`, `min_budget`, `max_budget`, `step` — AIMD
    ///   parameters for the best-effort per-window budget (bytes).
    ///
    /// # Panics
    ///
    /// Panics if `control_period` is zero, `best_effort` is empty, or the
    /// budget bounds are inconsistent (`min > max` or the initial budget
    /// outside them).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        critical: RegulatorDriver,
        target_bytes_per_period: u64,
        best_effort: Vec<RegulatorDriver>,
        initial_budget: u32,
        min_budget: u32,
        max_budget: u32,
        step: u32,
        control_period: u64,
    ) -> Self {
        assert!(control_period > 0, "control period must be non-zero");
        assert!(
            !best_effort.is_empty(),
            "feedback needs at least one best-effort port"
        );
        assert!(
            min_budget <= max_budget,
            "min_budget must not exceed max_budget"
        );
        assert!(
            (min_budget..=max_budget).contains(&initial_budget),
            "initial budget outside [min, max]"
        );
        FeedbackController {
            critical,
            target_bytes_per_period,
            best_effort,
            be_budget: initial_budget,
            min_budget,
            max_budget,
            step,
            control_period,
            next_at: 0,
            last_crit_total: 0,
            adjustments: 0,
        }
    }

    /// The best-effort per-window budget currently commanded.
    pub fn commanded_budget(&self) -> u32 {
        self.be_budget
    }

    /// Number of control decisions taken so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    fn program(&self) {
        for be in &self.best_effort {
            be.set_budget_bytes(self.be_budget);
            be.set_enabled(true);
        }
    }
}

impl Controller for FeedbackController {
    fn on_cycle(&mut self, now: Cycle) {
        if now.get() < self.next_at {
            return;
        }
        let first = self.next_at == 0;
        self.next_at = now.get() + self.control_period;
        let crit_total = self.critical.telemetry().total_bytes;
        let crit_used = crit_total - self.last_crit_total;
        self.last_crit_total = crit_total;
        if first {
            // Nothing measured yet: just program the initial budgets.
            self.program();
            return;
        }
        self.adjustments += 1;
        if crit_used < self.target_bytes_per_period {
            self.be_budget = (self.be_budget / 2).max(self.min_budget);
        } else {
            self.be_budget = self
                .be_budget
                .saturating_add(self.step)
                .min(self.max_budget);
        }
        self.program();
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        Some(Cycle::new(self.next_at).max(now))
    }

    fn label(&self) -> &'static str {
        "feedback-aimd"
    }

    fn fork_ctrl(&self, ctx: &mut ForkCtx) -> Option<Box<dyn Controller>> {
        Some(Box::new(FeedbackController {
            critical: self.critical.forked(ctx),
            target_bytes_per_period: self.target_bytes_per_period,
            best_effort: self.best_effort.iter().map(|d| d.forked(ctx)).collect(),
            be_budget: self.be_budget,
            min_budget: self.min_budget,
            max_budget: self.max_budget,
            step: self.step,
            control_period: self.control_period,
            next_at: self.next_at,
            last_crit_total: self.last_crit_total,
            adjustments: self.adjustments,
        }))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("feedback-aimd");
        h.write_u64(self.target_bytes_per_period);
        h.write_usize(self.best_effort.len());
        h.write_u32(self.be_budget);
        h.write_u32(self.min_budget);
        h.write_u32(self.max_budget);
        h.write_u32(self.step);
        h.write_u64(self.control_period);
        h.write_u64(self.next_at);
        h.write_u64(self.last_crit_total);
        h.write_u64(self.adjustments);
    }

    fn snap_load(
        &mut self,
        r: &mut fgqos_sim::SnapReader<'_>,
    ) -> Result<(), fgqos_sim::SnapDecodeError> {
        use fgqos_sim::SnapDecodeError;
        r.section("feedback-aimd")?;
        self.target_bytes_per_period = r.read_u64("feedback-aimd target")?;
        let at = r.position();
        let n = r.read_usize("feedback-aimd best-effort count")?;
        if n != self.best_effort.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "feedback-aimd has {n} best-effort port(s) in stream, skeleton has {}",
                    self.best_effort.len()
                ),
                at,
            });
        }
        self.be_budget = r.read_u32("feedback-aimd be_budget")?;
        self.min_budget = r.read_u32("feedback-aimd min_budget")?;
        self.max_budget = r.read_u32("feedback-aimd max_budget")?;
        self.step = r.read_u32("feedback-aimd step")?;
        self.control_period = r.read_u64("feedback-aimd control_period")?;
        self.next_at = r.read_u64("feedback-aimd next_at")?;
        self.last_crit_total = r.read_u64("feedback-aimd last_crit_total")?;
        self.adjustments = r.read_u64("feedback-aimd adjustments")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regfile::Reg;
    use crate::regulator::{RegulatorConfig, TcRegulator};

    #[test]
    fn reclaim_gain_scales_slack_and_busy_clamps() {
        let crit = mk(1_000, u32::MAX);
        let be = mk(1_000, 0);
        let mut policy = ReclaimPolicy::new(
            crit.clone(),
            vec![be.clone()],
            ReclaimConfig {
                critical_reserved: 1_000,
                be_base: 0,
                control_period: 10_000,
                gain: 5,
                busy_threshold: Some(500),
            },
        );
        // Idle critical: slack 1000 x gain 5 -> 5000 per period -> 500/window.
        policy.on_cycle(Cycle::ZERO);
        assert_eq!(be.budget_bytes(), 500);
        // Busy critical (>= threshold): clamp to base.
        feed_bytes(&crit, 600);
        policy.on_cycle(Cycle::new(10_000));
        assert_eq!(be.budget_bytes(), 0);
    }

    fn mk(period: u32, budget: u32) -> RegulatorDriver {
        let (_reg, driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: period,
            budget_bytes: budget,
            ..RegulatorConfig::default()
        });
        driver
    }

    /// Pretends the hardware moved `bytes` more bytes on `d`'s port.
    fn feed_bytes(d: &RegulatorDriver, bytes: u64) {
        let cur = d.regfile().read64(Reg::TotalBytesLo, Reg::TotalBytesHi);
        d.regfile()
            .write64(Reg::TotalBytesLo, Reg::TotalBytesHi, cur + bytes);
    }

    #[test]
    fn static_partition_programs_once() {
        let d = mk(1024, 0);
        let mut p = StaticPartition::new(vec![PortBudget {
            driver: d.clone(),
            period_cycles: 500,
            budget_bytes: 640,
        }]);
        p.on_cycle(Cycle::ZERO);
        assert_eq!(d.period_cycles(), 500);
        assert_eq!(d.budget_bytes(), 640);
        assert!(d.enabled());
        // Re-programming is idempotent even if software pokes registers.
        d.set_budget_bytes(1);
        p.on_cycle(Cycle::new(1));
        assert_eq!(d.budget_bytes(), 1);
    }

    #[test]
    fn reclaim_redistributes_unused_critical_bytes() {
        let crit = mk(1_000, u32::MAX);
        let be1 = mk(1_000, 0);
        let be2 = mk(1_000, 0);
        let mut policy = ReclaimPolicy::new(
            crit.clone(),
            vec![be1.clone(), be2.clone()],
            ReclaimConfig {
                critical_reserved: 10_000,
                be_base: 2_000,
                control_period: 10_000,
                ..ReclaimConfig::default()
            },
        );
        // First decision: critical has used nothing -> full reclaim.
        policy.on_cycle(Cycle::ZERO);
        // bytes per period = 2000 + 10000/2 = 7000; windows per period = 10 -> 700.
        assert_eq!(be1.budget_bytes(), 700);
        assert_eq!(be2.budget_bytes(), 700);

        // Critical consumes 8k of its 10k reservation.
        feed_bytes(&crit, 8_000);
        policy.on_cycle(Cycle::new(10_000));
        // unused = 2000, share = 1000 -> per period 3000 -> per window 300.
        assert_eq!(be1.budget_bytes(), 300);
        assert!(be1.enabled() && be2.enabled());
    }

    #[test]
    fn reclaim_decisions_happen_once_per_period() {
        let crit = mk(1_000, u32::MAX);
        let be = mk(1_000, 0);
        let mut policy = ReclaimPolicy::new(
            crit.clone(),
            vec![be.clone()],
            ReclaimConfig {
                critical_reserved: 1_000,
                be_base: 100,
                control_period: 5_000,
                ..ReclaimConfig::default()
            },
        );
        policy.on_cycle(Cycle::ZERO);
        let after_first = be.budget_bytes();
        feed_bytes(&crit, 1_000);
        // Mid-period: no decision.
        policy.on_cycle(Cycle::new(2_500));
        assert_eq!(be.budget_bytes(), after_first);
        policy.on_cycle(Cycle::new(5_000));
        assert_ne!(be.budget_bytes(), after_first);
    }

    #[test]
    fn feedback_decreases_on_miss_and_recovers() {
        let crit = mk(1_000, u32::MAX);
        let be = mk(1_000, 0);
        let mut fb = FeedbackController::new(
            crit.clone(),
            5_000,
            vec![be.clone()],
            4_096,
            64,
            8_192,
            256,
            10_000,
        );
        fb.on_cycle(Cycle::ZERO); // initial programming
        assert_eq!(be.budget_bytes(), 4_096);

        // Critical starved: only 1k of 5k target -> halve.
        feed_bytes(&crit, 1_000);
        fb.on_cycle(Cycle::new(10_000));
        assert_eq!(fb.commanded_budget(), 2_048);
        assert_eq!(be.budget_bytes(), 2_048);

        // Still starved -> halve again.
        feed_bytes(&crit, 1_000);
        fb.on_cycle(Cycle::new(20_000));
        assert_eq!(fb.commanded_budget(), 1_024);

        // Target met -> additive increase.
        feed_bytes(&crit, 6_000);
        fb.on_cycle(Cycle::new(30_000));
        assert_eq!(fb.commanded_budget(), 1_280);
        assert_eq!(fb.adjustments(), 3);
    }

    #[test]
    fn feedback_respects_bounds() {
        let crit = mk(1_000, u32::MAX);
        let be = mk(1_000, 0);
        let mut fb = FeedbackController::new(
            crit.clone(),
            u64::MAX, // never met -> always decrease
            vec![be.clone()],
            128,
            100,
            8_192,
            256,
            1_000,
        );
        for t in 0..20u64 {
            fb.on_cycle(Cycle::new(t * 1_000));
        }
        assert_eq!(fb.commanded_budget(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one best-effort")]
    fn reclaim_needs_best_effort_ports() {
        let crit = mk(1_000, 0);
        let _ = ReclaimPolicy::new(crit, vec![], ReclaimConfig::default());
    }

    #[test]
    #[should_panic(expected = "initial budget outside")]
    fn feedback_validates_bounds() {
        let crit = mk(1_000, 0);
        let be = mk(1_000, 0);
        let _ = FeedbackController::new(crit, 1, vec![be], 10, 100, 200, 1, 1_000);
    }
}
