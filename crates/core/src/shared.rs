//! Centralized (shared-budget) regulation — the placement alternative.
//!
//! "Tightly-coupled" in the paper's title is a *placement* claim: one
//! regulator per master port, at the port. The obvious cheaper
//! alternative is a single regulator at the shared interconnect port
//! with one aggregate budget for all best-effort masters. This module
//! implements that alternative so the placement argument can be
//! measured: an aggregate budget controls the *total* bandwidth equally
//! well, but provides no isolation *among* the regulated masters — one
//! aggressive master can consume the entire group budget and starve its
//! peers, which per-port regulation makes impossible by construction.
//!
//! [`SharedRegulator`] is a group object; [`SharedRegulator::port_gate`]
//! hands out per-port gates that all debit the same window budget.

use fgqos_sim::axi::Request;
use fgqos_sim::gate::{GateDecision, PortGate};
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, StateHasher};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
struct GroupState {
    period: u64,
    budget: u64,
    window_start: Cycle,
    used: u64,
    windows: u64,
    max_window_bytes: u64,
}

impl GroupState {
    fn roll(&mut self, now: Cycle) {
        while now.saturating_since(self.window_start) >= self.period {
            self.max_window_bytes = self.max_window_bytes.max(self.used);
            self.used = 0;
            self.windows += 1;
            self.window_start += self.period;
        }
    }
}

/// A single window budget shared by a group of ports.
///
/// ```
/// use fgqos_core::shared::SharedRegulator;
/// use fgqos_sim::axi::{Dir, MasterId, Request};
/// use fgqos_sim::gate::PortGate;
/// use fgqos_sim::time::Cycle;
///
/// let group = SharedRegulator::new(1_000, 512);
/// let mut a = group.port_gate();
/// let mut b = group.port_gate();
/// let r = Request::new(MasterId::new(0), 0, 0, 16, Dir::Read, Cycle::ZERO);
/// assert!(a.try_accept(&r, Cycle::ZERO).is_accept()); // 256 of 512
/// assert!(b.try_accept(&r, Cycle::ZERO).is_accept()); // pool empty now
/// assert!(!a.try_accept(&r, Cycle::new(1)).is_accept());
/// ```
#[derive(Debug, Clone)]
pub struct SharedRegulator {
    state: Arc<Mutex<GroupState>>,
}

impl SharedRegulator {
    /// Creates a group with an aggregate `budget_bytes` per
    /// `period_cycles` window.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(period_cycles: u64, budget_bytes: u64) -> Self {
        assert!(period_cycles > 0, "regulation period must be non-zero");
        SharedRegulator {
            state: Arc::new(Mutex::new(GroupState {
                period: period_cycles,
                budget: budget_bytes,
                window_start: Cycle::ZERO,
                used: 0,
                windows: 0,
                max_window_bytes: 0,
            })),
        }
    }

    /// A gate for one member port (hand one to each regulated master).
    pub fn port_gate(&self) -> SharedBudgetGate {
        SharedBudgetGate {
            state: Arc::clone(&self.state),
            stall_cycles: 0,
            accepted_bytes: 0,
        }
    }

    /// Reprograms the aggregate budget (takes effect immediately; the
    /// centralized design has no per-port latching to preserve).
    pub fn set_budget_bytes(&self, budget_bytes: u64) {
        self.state.lock().expect("regulator lock").budget = budget_bytes;
    }

    /// Worst aggregate bytes observed in any completed window.
    pub fn max_window_bytes(&self) -> u64 {
        self.state.lock().expect("regulator lock").max_window_bytes
    }

    /// Completed windows.
    pub fn windows(&self) -> u64 {
        self.state.lock().expect("regulator lock").windows
    }

    /// Rebinds this group handle to the group state `ctx` maps it to (the
    /// snapshot-fork counterpart of cloning: member gates forked through
    /// the same `ctx` share the rebound state).
    pub fn forked(&self, ctx: &mut ForkCtx) -> SharedRegulator {
        SharedRegulator {
            state: ctx.fork_arc(&self.state),
        }
    }
}

/// One port's handle onto a [`SharedRegulator`] group budget.
#[derive(Debug)]
pub struct SharedBudgetGate {
    state: Arc<Mutex<GroupState>>,
    stall_cycles: u64,
    accepted_bytes: u64,
}

impl SharedBudgetGate {
    /// Cycles this port spent denied.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Bytes this port pushed through the group budget.
    pub fn accepted_bytes(&self) -> u64 {
        self.accepted_bytes
    }
}

impl PortGate for SharedBudgetGate {
    fn on_cycle(&mut self, now: Cycle) {
        self.state.lock().expect("regulator lock").roll(now);
    }

    fn try_accept(&mut self, request: &Request, now: Cycle) -> GateDecision {
        let mut s = self.state.lock().expect("regulator lock");
        s.roll(now);
        let bytes = request.bytes();
        if s.used + bytes <= s.budget {
            s.used += bytes;
            drop(s);
            self.accepted_bytes += bytes;
            GateDecision::Accept
        } else {
            drop(s);
            self.stall_cycles += 1;
            GateDecision::Deny
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        // A denied request can only succeed once the aggregate window
        // rolls. `window_start` may lag `now` (it only advances at
        // executed cycles); the `max(now)` clamp then degrades to "poll
        // now", which is always safe.
        let s = self.state.lock().expect("regulator lock");
        Some((s.window_start + s.period).max(now))
    }

    fn on_denied_skip(&mut self, cycles: u64) {
        self.stall_cycles += cycles;
    }

    fn label(&self) -> &'static str {
        "shared-budget"
    }

    fn fork_gate(&self, ctx: &mut ForkCtx) -> Option<Box<dyn PortGate>> {
        // All member gates of one group map to the same forked state, so
        // the aggregate-budget topology survives the fork.
        Some(Box::new(SharedBudgetGate {
            state: ctx.fork_arc(&self.state),
            stall_cycles: self.stall_cycles,
            accepted_bytes: self.accepted_bytes,
        }))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("shared-budget");
        let s = self.state.lock().expect("regulator lock");
        h.write_u64(s.period);
        h.write_u64(s.budget);
        h.write_u64(s.window_start.get());
        h.write_u64(s.used);
        h.write_u64(s.windows);
        h.write_u64(s.max_window_bytes);
        drop(s);
        h.write_u64(self.stall_cycles);
        h.write_u64(self.accepted_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_sim::axi::{Dir, MasterId};

    fn req(master: usize, serial: u64, bytes: u64) -> Request {
        let beats = (bytes / fgqos_sim::axi::BEAT_BYTES) as u16;
        Request::new(
            MasterId::new(master),
            serial,
            serial * 4096,
            beats,
            Dir::Read,
            Cycle::ZERO,
        )
    }

    #[test]
    fn group_budget_is_aggregate() {
        let group = SharedRegulator::new(1_000, 512);
        let mut a = group.port_gate();
        let mut b = group.port_gate();
        a.on_cycle(Cycle::ZERO);
        assert!(a.try_accept(&req(0, 0, 256), Cycle::ZERO).is_accept());
        assert!(b.try_accept(&req(1, 0, 256), Cycle::ZERO).is_accept());
        // Aggregate exhausted: both ports are denied.
        assert_eq!(
            a.try_accept(&req(0, 1, 16), Cycle::ZERO),
            GateDecision::Deny
        );
        assert_eq!(
            b.try_accept(&req(1, 1, 16), Cycle::ZERO),
            GateDecision::Deny
        );
    }

    #[test]
    fn group_budget_replenishes() {
        let group = SharedRegulator::new(100, 128);
        let mut a = group.port_gate();
        assert!(a.try_accept(&req(0, 0, 128), Cycle::ZERO).is_accept());
        assert_eq!(
            a.try_accept(&req(0, 1, 128), Cycle::new(50)),
            GateDecision::Deny
        );
        assert!(a.try_accept(&req(0, 1, 128), Cycle::new(100)).is_accept());
        assert_eq!(group.windows(), 1);
        assert_eq!(group.max_window_bytes(), 128);
    }

    #[test]
    fn one_port_can_starve_the_group() {
        // The structural unfairness per-port regulation removes: the
        // greedy port drains the whole aggregate budget first.
        let group = SharedRegulator::new(1_000, 1_024);
        let mut greedy = group.port_gate();
        let mut meek = group.port_gate();
        greedy.on_cycle(Cycle::ZERO);
        // Greedy gets there first every window.
        for s in 0..4u64 {
            let _ = greedy.try_accept(&req(0, s, 256), Cycle::new(s));
        }
        assert_eq!(
            meek.try_accept(&req(1, 0, 256), Cycle::new(10)),
            GateDecision::Deny
        );
        assert_eq!(greedy.accepted_bytes(), 1_024);
        assert_eq!(meek.accepted_bytes(), 0);
    }

    #[test]
    fn budget_reprogramming_is_immediate() {
        let group = SharedRegulator::new(1_000, 0);
        let mut a = group.port_gate();
        assert_eq!(
            a.try_accept(&req(0, 0, 16), Cycle::ZERO),
            GateDecision::Deny
        );
        group.set_budget_bytes(1_024);
        assert!(a.try_accept(&req(0, 0, 16), Cycle::new(1)).is_accept());
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_rejected() {
        let _ = SharedRegulator::new(0, 100);
    }
}
