//! The tightly-coupled bandwidth regulator.
//!
//! [`TcRegulator`] is the paper's IP: a per-port hardware block that gates
//! the AXI address handshake against a window-based byte budget. It
//! implements [`PortGate`], so it drops into the same seam of the
//! simulated SoC where the RTL sits on the real fabric.
//!
//! Two design choices of the IP are exposed for the ablation benches:
//!
//! * [`ChargePolicy`] — when a transaction's bytes are debited:
//!   at the address handshake (`Acceptance`, the paper's choice: the
//!   window can never be over-committed) or at completion (`Completion`,
//!   which lets up to `outstanding × burst` extra bytes slip through).
//! * [`OvershootPolicy`] — whether a request that does not fully fit in
//!   the remaining budget is denied (`Conservative`, hard bound
//!   `window bytes ≤ budget`) or admitted as a final burst (`FinalBurst`,
//!   bound `budget + one burst`, the classic MemGuard semantic).

use crate::driver::RegulatorDriver;
use crate::monitor::WindowMonitor;
use crate::regfile::{
    Reg, RegFile, CTRL_ENABLE, CTRL_RESET_STATS, CTRL_SPLIT_RW, STATUS_EXHAUSTED, STATUS_THROTTLED,
};
use fgqos_sim::axi::Dir;
use fgqos_sim::axi::{Request, Response};
use fgqos_sim::gate::{GateDecision, PortGate};
use fgqos_sim::time::Cycle;
use fgqos_sim::{ForkCtx, StateHasher};
use std::sync::Arc;

/// When accepted transactions are debited from the window budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChargePolicy {
    /// Debit the full burst at the address handshake (paper's IP).
    #[default]
    Acceptance,
    /// Debit at transaction completion (looser; ablation variant).
    Completion,
}

/// How a request that exceeds the remaining budget is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OvershootPolicy {
    /// Deny unless the whole burst fits: window bytes never exceed the
    /// budget. Requires `budget ≥ max burst` to avoid starving the port.
    #[default]
    Conservative,
    /// Admit while any budget remains: at most one burst of overshoot per
    /// window (MemGuard-style accounting).
    FinalBurst,
}

/// Separate per-window byte budgets for the read and write channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitBudgets {
    /// Read-channel (AR) byte budget per window.
    pub read_bytes: u32,
    /// Write-channel (AW) byte budget per window.
    pub write_bytes: u32,
}

/// Construction-time configuration written into the register file.
#[derive(Debug, Clone, Copy)]
pub struct RegulatorConfig {
    /// Replenishment window length in cycles.
    pub period_cycles: u32,
    /// Byte budget per window.
    pub budget_bytes: u32,
    /// Whether regulation starts enabled (monitoring always runs).
    pub enabled: bool,
    /// Debit point.
    pub charge: ChargePolicy,
    /// Overshoot handling.
    pub overshoot: OvershootPolicy,
    /// When set, the read and write channels are regulated against these
    /// separate budgets (`budget_bytes` is ignored while split mode is
    /// on, but still programmed as the combined telemetry reference).
    pub split: Option<SplitBudgets>,
}

impl Default for RegulatorConfig {
    fn default() -> Self {
        RegulatorConfig {
            period_cycles: 1024,
            budget_bytes: 1024,
            enabled: false,
            charge: ChargePolicy::Acceptance,
            overshoot: OvershootPolicy::Conservative,
            split: None,
        }
    }
}

/// The tightly-coupled regulator gate. See the [module docs](self).
#[derive(Debug)]
pub struct TcRegulator {
    regs: Arc<RegFile>,
    monitor: WindowMonitor,
    budget: u64,
    budget_rd: u64,
    budget_wr: u64,
    charge: ChargePolicy,
    overshoot: OvershootPolicy,
    stall_cycles: u64,
}

impl TcRegulator {
    /// Builds a regulator over an existing register block (the block's
    /// current `PERIOD`/`BUDGET`/`CTRL` values are used).
    pub fn new(regs: Arc<RegFile>, charge: ChargePolicy, overshoot: OvershootPolicy) -> Self {
        let budget = regs.read(Reg::Budget) as u64;
        let budget_rd = regs.read(Reg::BudgetRd) as u64;
        let budget_wr = regs.read(Reg::BudgetWr) as u64;
        let monitor = WindowMonitor::new(Arc::clone(&regs));
        TcRegulator {
            regs,
            monitor,
            budget,
            budget_rd,
            budget_wr,
            charge,
            overshoot,
            stall_cycles: 0,
        }
    }

    /// Creates a regulator plus the software [`RegulatorDriver`] sharing
    /// its register block, programmed from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.period_cycles` is zero.
    pub fn create(cfg: RegulatorConfig) -> (TcRegulator, RegulatorDriver) {
        assert!(cfg.period_cycles > 0, "regulation period must be non-zero");
        let regs = RegFile::shared();
        regs.sw_write(Reg::Period, cfg.period_cycles);
        regs.sw_write(Reg::Budget, cfg.budget_bytes);
        if let Some(split) = cfg.split {
            regs.sw_write(Reg::BudgetRd, split.read_bytes);
            regs.sw_write(Reg::BudgetWr, split.write_bytes);
            regs.set_bits(Reg::Ctrl, CTRL_SPLIT_RW);
        }
        if cfg.enabled {
            regs.set_bits(Reg::Ctrl, CTRL_ENABLE);
        }
        let driver = RegulatorDriver::new(Arc::clone(&regs));
        let regulator = TcRegulator::new(regs, cfg.charge, cfg.overshoot);
        (regulator, driver)
    }

    /// Creates a *monitor-only* instance (regulation disabled): the
    /// tightly-coupled telemetry the QoS policies use to observe a
    /// critical port without constraining it.
    pub fn monitor_only(period_cycles: u32) -> (TcRegulator, RegulatorDriver) {
        TcRegulator::create(RegulatorConfig {
            period_cycles,
            budget_bytes: u32::MAX,
            enabled: false,
            ..RegulatorConfig::default()
        })
    }

    /// The budget currently in force (latched at the last window start).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Cycles this port has spent throttled.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Bytes accepted so far in the open window.
    pub fn window_bytes(&self) -> u64 {
        self.monitor.win_bytes()
    }

    /// Starts recording every closed window into a bounded
    /// [`WindowLog`](crate::monitor::WindowLog) of `capacity` windows
    /// (budget, granted bytes, overshoot — the paper's auditable
    /// per-window telemetry).
    pub fn enable_window_log(&mut self, capacity: usize) {
        self.monitor.enable_log(capacity);
    }

    /// The per-window log, if [`TcRegulator::enable_window_log`] was
    /// called.
    pub fn window_log(&self) -> Option<&crate::monitor::WindowLog> {
        self.monitor.log()
    }

    /// Shared access to the underlying monitor (telemetry snapshots).
    pub fn monitor(&self) -> &WindowMonitor {
        &self.monitor
    }

    fn enabled(&self) -> bool {
        self.regs.read(Reg::Ctrl) & CTRL_ENABLE != 0
    }

    fn split_rw(&self) -> bool {
        self.regs.read(Reg::Ctrl) & CTRL_SPLIT_RW != 0
    }
}

impl PortGate for TcRegulator {
    fn on_cycle(&mut self, now: Cycle) {
        let ctrl = self.regs.read(Reg::Ctrl);
        if ctrl & CTRL_RESET_STATS != 0 {
            self.monitor.reset(now);
            self.stall_cycles = 0;
            self.regs.write64(Reg::StallLo, Reg::StallHi, 0);
            self.regs.clear_bits(Reg::Ctrl, CTRL_RESET_STATS);
        }
        let closed = self.monitor.on_cycle(now, self.budget);
        if closed > 0 {
            // Latch possibly updated budgets and start the new window
            // unthrottled.
            self.budget = self.regs.read(Reg::Budget) as u64;
            self.budget_rd = self.regs.read(Reg::BudgetRd) as u64;
            self.budget_wr = self.regs.read(Reg::BudgetWr) as u64;
            self.regs.clear_bits(Reg::Status, STATUS_THROTTLED);
        }
    }

    fn try_accept(&mut self, request: &Request, _now: Cycle) -> GateDecision {
        let bytes = request.bytes();
        if !self.enabled() {
            self.monitor.record_dir(bytes, request.dir);
            return GateDecision::Accept;
        }
        // In split mode each channel is accounted against its own budget
        // (the IP gates AR and AW independently); otherwise the combined
        // window bytes are checked against the combined budget.
        let (used, budget) = if self.split_rw() {
            match request.dir {
                Dir::Read => (self.monitor.win_rd_bytes(), self.budget_rd),
                Dir::Write => (self.monitor.win_wr_bytes(), self.budget_wr),
            }
        } else {
            (self.monitor.win_bytes(), self.budget)
        };
        let admit = match self.overshoot {
            OvershootPolicy::Conservative => used + bytes <= budget,
            OvershootPolicy::FinalBurst => used < budget,
        };
        if admit {
            if self.charge == ChargePolicy::Acceptance {
                self.monitor.record_dir(bytes, request.dir);
            }
            GateDecision::Accept
        } else {
            self.stall_cycles += 1;
            self.regs
                .write64(Reg::StallLo, Reg::StallHi, self.stall_cycles);
            self.regs
                .set_bits(Reg::Status, STATUS_THROTTLED | STATUS_EXHAUSTED);
            GateDecision::Deny
        }
    }

    fn on_complete(&mut self, response: &Response, _now: Cycle) {
        if self.enabled() && self.charge == ChargePolicy::Completion {
            self.monitor
                .record_dir(response.request.bytes(), response.request.dir);
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        // Decision and telemetry change only at window boundaries (or at
        // accept/complete/register-write events, which all happen on
        // executed cycles anyway).
        Some((self.monitor.window_start() + self.monitor.period()).max(now))
    }

    fn on_denied_skip(&mut self, cycles: u64) {
        self.stall_cycles += cycles;
        self.regs
            .write64(Reg::StallLo, Reg::StallHi, self.stall_cycles);
    }

    fn leap_support(&self, _now: Cycle) -> fgqos_sim::LeapSupport {
        // Admission depends only on register/monitor state (all in the
        // snapshot stream), never on absolute time — except a window log,
        // which materializes one record per window and cannot be
        // reproduced algebraically.
        if self.monitor.log().is_some() {
            fgqos_sim::LeapSupport::deny()
        } else {
            fgqos_sim::LeapSupport::clear()
        }
    }

    fn label(&self) -> &'static str {
        "tc-regulator"
    }

    fn fork_gate(&self, ctx: &mut ForkCtx) -> Option<Box<dyn PortGate>> {
        // The monitor forks against the same remapped register block, so
        // gate and driver stay MMIO-coupled in the forked Soc.
        let regs = ctx.fork_arc(&self.regs);
        Some(Box::new(TcRegulator {
            regs,
            monitor: self.monitor.fork(ctx),
            budget: self.budget,
            budget_rd: self.budget_rd,
            budget_wr: self.budget_wr,
            charge: self.charge,
            overshoot: self.overshoot,
            stall_cycles: self.stall_cycles,
        }))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("tc-regulator");
        self.regs.snap(h);
        self.monitor.snap(h);
        h.write_u64(self.budget);
        h.write_u64(self.budget_rd);
        h.write_u64(self.budget_wr);
        h.write_bool(self.charge == ChargePolicy::Completion);
        h.write_bool(self.overshoot == OvershootPolicy::FinalBurst);
        h.write_counter_u64(self.stall_cycles);
    }

    fn snap_load(
        &mut self,
        r: &mut fgqos_sim::SnapReader<'_>,
    ) -> Result<(), fgqos_sim::SnapDecodeError> {
        r.section("tc-regulator")?;
        // Restoring through the shared handle also restores the driver's
        // view — gate and driver stay MMIO-coupled, exactly as in a fork.
        self.regs.snap_load(r)?;
        self.monitor.snap_load(r)?;
        self.budget = r.read_u64("tc-regulator budget")?;
        self.budget_rd = r.read_u64("tc-regulator budget_rd")?;
        self.budget_wr = r.read_u64("tc-regulator budget_wr")?;
        self.charge = if r.read_bool("tc-regulator charge policy")? {
            ChargePolicy::Completion
        } else {
            ChargePolicy::Acceptance
        };
        self.overshoot = if r.read_bool("tc-regulator overshoot policy")? {
            OvershootPolicy::FinalBurst
        } else {
            OvershootPolicy::Conservative
        };
        self.stall_cycles = r.read_u64("tc-regulator stall_cycles")?;
        Ok(())
    }

    fn collect_metrics(&self, prefix: &str, registry: &mut fgqos_sim::metrics::MetricsRegistry) {
        registry.gauge(format!("{prefix}.budget_bytes"), self.budget as f64);
        registry.gauge(
            format!("{prefix}.period_cycles"),
            self.monitor.period() as f64,
        );
        registry.counter(format!("{prefix}.enabled"), u64::from(self.enabled()));
        registry.counter(format!("{prefix}.stall_cycles"), self.stall_cycles);
        registry.counter(format!("{prefix}.windows"), self.monitor.windows());
        registry.counter(format!("{prefix}.total_bytes"), self.monitor.total_bytes());
        registry.counter(format!("{prefix}.window_bytes"), self.monitor.win_bytes());
        registry.counter(
            format!("{prefix}.max_overshoot"),
            self.regs.read(Reg::MaxOvershoot) as u64,
        );
        if let Some(log) = self.monitor.log() {
            registry.counter(
                format!("{prefix}.window_log_len"),
                log.records().len() as u64,
            );
            registry.counter(format!("{prefix}.window_log_dropped"), log.dropped());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_sim::axi::{Dir, MasterId};

    fn req(serial: u64, bytes: u64) -> Request {
        let beats = (bytes / fgqos_sim::axi::BEAT_BYTES) as u16;
        Request::new(
            MasterId::new(0),
            serial,
            serial * 4096,
            beats,
            Dir::Read,
            Cycle::ZERO,
        )
    }

    fn regulator(period: u32, budget: u32) -> (TcRegulator, RegulatorDriver) {
        TcRegulator::create(RegulatorConfig {
            period_cycles: period,
            budget_bytes: budget,
            enabled: true,
            ..RegulatorConfig::default()
        })
    }

    #[test]
    fn admits_until_budget_then_denies() {
        let (mut r, _d) = regulator(1_000, 256);
        r.on_cycle(Cycle::ZERO);
        assert!(r.try_accept(&req(0, 128), Cycle::new(1)).is_accept());
        assert!(r.try_accept(&req(1, 128), Cycle::new(2)).is_accept());
        assert_eq!(
            r.try_accept(&req(2, 128), Cycle::new(3)),
            GateDecision::Deny
        );
        assert_eq!(r.window_bytes(), 256);
        assert!(r.stall_cycles() == 1);
    }

    #[test]
    fn budget_replenishes_at_window_boundary() {
        let (mut r, _d) = regulator(100, 128);
        r.on_cycle(Cycle::ZERO);
        assert!(r.try_accept(&req(0, 128), Cycle::new(0)).is_accept());
        assert_eq!(
            r.try_accept(&req(1, 128), Cycle::new(1)),
            GateDecision::Deny
        );
        r.on_cycle(Cycle::new(100));
        assert!(r.try_accept(&req(1, 128), Cycle::new(100)).is_accept());
    }

    #[test]
    fn conservative_never_exceeds_budget() {
        let (mut r, _d) = regulator(1_000, 200);
        r.on_cycle(Cycle::ZERO);
        assert!(r.try_accept(&req(0, 128), Cycle::ZERO).is_accept());
        // 128 + 128 > 200: denied even though some budget remains.
        assert_eq!(r.try_accept(&req(1, 128), Cycle::ZERO), GateDecision::Deny);
        assert!(r.window_bytes() <= 200);
    }

    #[test]
    fn final_burst_allows_one_overshoot() {
        let (mut r, d) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 200,
            enabled: true,
            overshoot: OvershootPolicy::FinalBurst,
            ..RegulatorConfig::default()
        });
        r.on_cycle(Cycle::ZERO);
        assert!(r.try_accept(&req(0, 128), Cycle::ZERO).is_accept());
        // 128 < 200: admitted, window ends at 256 > budget.
        assert!(r.try_accept(&req(1, 128), Cycle::ZERO).is_accept());
        assert_eq!(r.window_bytes(), 256);
        // Now win_bytes ≥ budget: denied.
        assert_eq!(r.try_accept(&req(2, 16), Cycle::ZERO), GateDecision::Deny);
        // Overshoot is visible in telemetry after the window closes.
        r.on_cycle(Cycle::new(1_000));
        assert_eq!(d.telemetry().max_overshoot, 56);
    }

    #[test]
    fn disabled_regulator_monitors_but_admits_all() {
        let (mut r, d) = TcRegulator::create(RegulatorConfig {
            period_cycles: 100,
            budget_bytes: 16,
            enabled: false,
            ..RegulatorConfig::default()
        });
        r.on_cycle(Cycle::ZERO);
        for s in 0..10 {
            assert!(r.try_accept(&req(s, 256), Cycle::ZERO).is_accept());
        }
        assert_eq!(d.telemetry().window_bytes, 2560);
        assert_eq!(r.stall_cycles(), 0);
    }

    #[test]
    fn status_bits_reflect_throttling() {
        let (mut r, d) = regulator(100, 16);
        r.on_cycle(Cycle::ZERO);
        assert!(r.try_accept(&req(0, 16), Cycle::ZERO).is_accept());
        let _ = r.try_accept(&req(1, 16), Cycle::ZERO);
        let t = d.telemetry();
        assert!(t.throttled);
        assert!(t.exhausted);
        // THROTTLED clears at the next window; EXHAUSTED is sticky.
        r.on_cycle(Cycle::new(100));
        let t = d.telemetry();
        assert!(!t.throttled);
        assert!(t.exhausted);
        d.clear_exhausted();
        assert!(!d.telemetry().exhausted);
    }

    #[test]
    fn budget_reconfiguration_latches_next_window() {
        let (mut r, d) = regulator(100, 64);
        r.on_cycle(Cycle::ZERO);
        d.set_budget_bytes(1024);
        // Old budget still in force mid-window.
        assert!(r.try_accept(&req(0, 64), Cycle::new(1)).is_accept());
        assert_eq!(r.try_accept(&req(1, 64), Cycle::new(2)), GateDecision::Deny);
        r.on_cycle(Cycle::new(100));
        assert_eq!(r.budget(), 1024);
        assert!(r.try_accept(&req(1, 64), Cycle::new(100)).is_accept());
    }

    #[test]
    fn completion_charging_debits_late() {
        let (mut r, _d) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 128,
            enabled: true,
            charge: ChargePolicy::Completion,
            ..RegulatorConfig::default()
        });
        r.on_cycle(Cycle::ZERO);
        // Nothing is debited at acceptance, so several over-budget bursts
        // can be admitted before completions land.
        let a = req(0, 128);
        let b = req(1, 128);
        assert!(r.try_accept(&a, Cycle::ZERO).is_accept());
        assert!(r.try_accept(&b, Cycle::ZERO).is_accept());
        assert_eq!(r.window_bytes(), 0);
        r.on_complete(
            &Response {
                request: a,
                completed_at: Cycle::new(50),
            },
            Cycle::new(50),
        );
        assert_eq!(r.window_bytes(), 128);
        // Budget is now fully consumed by completed bytes.
        assert_eq!(
            r.try_accept(&req(2, 16), Cycle::new(51)),
            GateDecision::Deny
        );
    }

    #[test]
    fn reset_stats_ctrl_bit_self_clears() {
        let (mut r, d) = regulator(100, 64);
        r.on_cycle(Cycle::ZERO);
        let _ = r.try_accept(&req(0, 64), Cycle::ZERO);
        let _ = r.try_accept(&req(1, 64), Cycle::ZERO); // denied -> stall
        d.reset_stats();
        r.on_cycle(Cycle::new(1));
        let t = d.telemetry();
        assert_eq!(t.total_bytes, 0);
        assert_eq!(t.stall_cycles, 0);
        assert_eq!(d.regfile().read(Reg::Ctrl) & CTRL_RESET_STATS, 0);
    }

    #[test]
    fn monitor_only_constructor() {
        let (mut r, d) = TcRegulator::monitor_only(500);
        r.on_cycle(Cycle::ZERO);
        for s in 0..100 {
            assert!(r.try_accept(&req(s, 4096), Cycle::ZERO).is_accept());
        }
        assert_eq!(d.telemetry().total_bytes, 409_600);
    }

    fn req_dir(serial: u64, bytes: u64, dir: Dir) -> Request {
        let beats = (bytes / fgqos_sim::axi::BEAT_BYTES) as u16;
        Request::new(
            MasterId::new(0),
            serial,
            serial * 4096,
            beats,
            dir,
            Cycle::ZERO,
        )
    }

    #[test]
    fn split_mode_regulates_channels_independently() {
        let (mut r, _d) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 1_024,
            enabled: true,
            split: Some(SplitBudgets {
                read_bytes: 256,
                write_bytes: 128,
            }),
            ..RegulatorConfig::default()
        });
        r.on_cycle(Cycle::ZERO);
        // Reads consume the read budget only.
        assert!(r
            .try_accept(&req_dir(0, 256, Dir::Read), Cycle::ZERO)
            .is_accept());
        assert_eq!(
            r.try_accept(&req_dir(1, 16, Dir::Read), Cycle::ZERO),
            GateDecision::Deny
        );
        // The write channel is untouched by read traffic.
        assert!(r
            .try_accept(&req_dir(2, 128, Dir::Write), Cycle::ZERO)
            .is_accept());
        assert_eq!(
            r.try_accept(&req_dir(3, 16, Dir::Write), Cycle::ZERO),
            GateDecision::Deny
        );
        // Both replenish at the boundary.
        r.on_cycle(Cycle::new(1_000));
        assert!(r
            .try_accept(&req_dir(4, 256, Dir::Read), Cycle::new(1_000))
            .is_accept());
        assert!(r
            .try_accept(&req_dir(5, 128, Dir::Write), Cycle::new(1_000))
            .is_accept());
    }

    #[test]
    fn split_mode_telemetry_tracks_directions() {
        let (mut r, d) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 4_096,
            enabled: true,
            split: Some(SplitBudgets {
                read_bytes: 2_048,
                write_bytes: 2_048,
            }),
            ..RegulatorConfig::default()
        });
        r.on_cycle(Cycle::ZERO);
        assert!(r
            .try_accept(&req_dir(0, 512, Dir::Read), Cycle::ZERO)
            .is_accept());
        assert!(r
            .try_accept(&req_dir(1, 256, Dir::Write), Cycle::ZERO)
            .is_accept());
        let t = d.telemetry();
        assert_eq!(t.window_read_bytes, 512);
        assert_eq!(t.window_write_bytes, 256);
        assert_eq!(t.window_bytes, 768);
    }

    #[test]
    fn split_budget_reconfig_latches_next_window() {
        let (mut r, d) = TcRegulator::create(RegulatorConfig {
            period_cycles: 100,
            budget_bytes: 1_024,
            enabled: true,
            split: Some(SplitBudgets {
                read_bytes: 128,
                write_bytes: 128,
            }),
            ..RegulatorConfig::default()
        });
        r.on_cycle(Cycle::ZERO);
        d.set_read_budget_bytes(512);
        assert!(r
            .try_accept(&req_dir(0, 128, Dir::Read), Cycle::ZERO)
            .is_accept());
        assert_eq!(
            r.try_accept(&req_dir(1, 128, Dir::Read), Cycle::ZERO),
            GateDecision::Deny
        );
        r.on_cycle(Cycle::new(100));
        assert!(r
            .try_accept(&req_dir(1, 512, Dir::Read), Cycle::new(100))
            .is_accept());
    }

    #[test]
    fn window_log_and_metrics_exposed() {
        use fgqos_sim::metrics::{MetricValue, MetricsRegistry};
        let (mut r, _d) = regulator(100, 128);
        r.enable_window_log(4);
        r.on_cycle(Cycle::ZERO);
        assert!(r.try_accept(&req(0, 128), Cycle::ZERO).is_accept());
        let _ = r.try_accept(&req(1, 128), Cycle::new(1)); // denied
        r.on_cycle(Cycle::new(100));
        let log = r.window_log().unwrap();
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.records()[0].bytes, 128);
        assert_eq!(log.records()[0].budget, 128);

        let mut reg = MetricsRegistry::new();
        r.collect_metrics("p", &mut reg);
        assert_eq!(reg.get("p.stall_cycles"), Some(&MetricValue::Counter(1)));
        assert_eq!(reg.get("p.windows"), Some(&MetricValue::Counter(1)));
        assert_eq!(reg.get("p.enabled"), Some(&MetricValue::Counter(1)));
        assert_eq!(reg.get("p.budget_bytes"), Some(&MetricValue::Gauge(128.0)));
        assert_eq!(reg.get("p.window_log_len"), Some(&MetricValue::Counter(1)));
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_rejected() {
        let _ = TcRegulator::create(RegulatorConfig {
            period_cycles: 0,
            ..RegulatorConfig::default()
        });
    }
}
