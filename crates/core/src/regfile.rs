//! Memory-mapped register interface of the regulator IP.
//!
//! The real IP exposes a 32-bit AXI-Lite register block per regulated
//! port; the Linux driver configures budgets and reads telemetry through
//! it. This module models that block bit-accurately: registers are 32-bit
//! words, wide counters are split into LO/HI pairs, sticky status bits are
//! write-1-to-clear, and configuration written by software is *latched by
//! the hardware at the next window boundary* (so a reconfiguration never
//! corrupts the accounting of the window in flight).
//!
//! [`RegFile`] is shared between the hardware side (the
//! [`TcRegulator`](crate::regulator::TcRegulator) gate inside the
//! simulated SoC) and the software side (the
//! [`RegulatorDriver`](crate::driver::RegulatorDriver) held by test
//! harnesses and QoS policies), exactly as MMIO is shared between fabric
//! and host on the real chip.

use fgqos_sim::{SharedFork, StateHasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Register offsets of the regulator block (one word each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Reg {
    /// Control: bit 0 `ENABLE`, bit 1 `RESET_STATS` (self-clearing).
    Ctrl = 0,
    /// Replenishment window length in cycles (takes effect next window).
    Period = 1,
    /// Byte budget per window (takes effect next window).
    Budget = 2,
    /// Status: bit 0 `THROTTLED` (live), bit 1 `EXHAUSTED` (sticky, W1C).
    Status = 3,
    /// Bytes accepted in the current (open) window.
    WinBytes = 4,
    /// Transactions accepted in the current (open) window.
    WinTxns = 5,
    /// Total accepted bytes, low word.
    TotalBytesLo = 6,
    /// Total accepted bytes, high word.
    TotalBytesHi = 7,
    /// Total accepted transactions, low word.
    TotalTxnsLo = 8,
    /// Total accepted transactions, high word.
    TotalTxnsHi = 9,
    /// Cycles spent throttling (denied handshake), low word.
    StallLo = 10,
    /// Cycles spent throttling, high word.
    StallHi = 11,
    /// Completed windows since last stats reset.
    Windows = 12,
    /// Bytes of the most recently completed window.
    LastWinBytes = 13,
    /// Maximum bytes-over-budget observed in any completed window.
    MaxOvershoot = 14,
    /// Read-channel byte budget per window (split mode).
    BudgetRd = 15,
    /// Write-channel byte budget per window (split mode).
    BudgetWr = 16,
    /// Read bytes accepted in the current window.
    WinRdBytes = 17,
    /// Write bytes accepted in the current window.
    WinWrBytes = 18,
}

/// Number of 32-bit registers in the block.
pub const REG_COUNT: usize = 19;

/// `CTRL` bit: regulation enable (monitoring runs regardless).
pub const CTRL_ENABLE: u32 = 1 << 0;
/// `CTRL` bit: clear all telemetry counters (hardware self-clears it).
pub const CTRL_RESET_STATS: u32 = 1 << 1;
/// `CTRL` bit: regulate the read and write channels against separate
/// budgets (`BUDGET_RD`/`BUDGET_WR`) instead of the combined `BUDGET`.
pub const CTRL_SPLIT_RW: u32 = 1 << 2;
/// `CTRL` bit: assert the interrupt line while `EXHAUSTED` is set.
pub const CTRL_IRQ_ENABLE: u32 = 1 << 3;
/// `STATUS` bit: the port is currently being throttled.
pub const STATUS_THROTTLED: u32 = 1 << 0;
/// `STATUS` bit: budget ran out at least once (sticky, write 1 to clear).
pub const STATUS_EXHAUSTED: u32 = 1 << 1;

/// The register block. Create one per regulated port and share it between
/// the regulator (hardware side) and the driver (software side) with
/// [`RegFile::shared`].
#[derive(Debug)]
pub struct RegFile {
    regs: [AtomicU32; REG_COUNT],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// Creates a block with reset values: disabled, period 1024 cycles,
    /// budget 1024 bytes (reset defaults of the IP).
    pub fn new() -> Self {
        let rf = RegFile {
            regs: std::array::from_fn(|_| AtomicU32::new(0)),
        };
        rf.write(Reg::Period, 1024);
        rf.write(Reg::Budget, 1024);
        rf.write(Reg::BudgetRd, 512);
        rf.write(Reg::BudgetWr, 512);
        rf
    }

    /// Creates a shareable block (hardware and software sides each hold a
    /// clone of the `Arc`).
    pub fn shared() -> Arc<RegFile> {
        Arc::new(RegFile::new())
    }

    /// Raw register read (software semantics: plain load).
    #[inline]
    pub fn read(&self, reg: Reg) -> u32 {
        self.regs[reg as usize].load(Ordering::Relaxed)
    }

    /// Raw register write.
    ///
    /// Software-visible side effects (W1C status bits) are handled by
    /// [`RegFile::sw_write`]; this method is the raw store used by the
    /// hardware side.
    #[inline]
    pub fn write(&self, reg: Reg, value: u32) {
        self.regs[reg as usize].store(value, Ordering::Relaxed);
    }

    /// Software write with register-specific semantics: writes to
    /// `STATUS` clear the sticky bits whose positions are set in `value`
    /// (write-1-to-clear); other registers store the value.
    pub fn sw_write(&self, reg: Reg, value: u32) {
        match reg {
            Reg::Status => {
                // W1C: clear bits the software acknowledged.
                self.regs[Reg::Status as usize].fetch_and(!value, Ordering::Relaxed);
            }
            _ => self.write(reg, value),
        }
    }

    /// Sets bits in a register (hardware side).
    #[inline]
    pub fn set_bits(&self, reg: Reg, bits: u32) {
        self.regs[reg as usize].fetch_or(bits, Ordering::Relaxed);
    }

    /// Clears bits in a register (hardware side).
    #[inline]
    pub fn clear_bits(&self, reg: Reg, bits: u32) {
        self.regs[reg as usize].fetch_and(!bits, Ordering::Relaxed);
    }

    /// Reads a LO/HI counter pair as a 64-bit value.
    ///
    /// Models the double-read dance real drivers perform; in the
    /// simulator the two words are coherent within a cycle.
    pub fn read64(&self, lo: Reg, hi: Reg) -> u64 {
        let l = self.read(lo) as u64;
        let h = self.read(hi) as u64;
        (h << 32) | l
    }

    /// Writes a 64-bit value into a LO/HI counter pair (hardware side).
    pub fn write64(&self, lo: Reg, hi: Reg, value: u64) {
        self.write(lo, value as u32);
        self.write(hi, (value >> 32) as u32);
    }

    /// Feeds every register word, in offset order, into a snapshot
    /// fingerprint stream.
    ///
    /// Wide-counter LO/HI pairs are written through the typed 64-bit
    /// counter writer: the little-endian byte stream of
    /// `write_u32(lo); write_u32(hi)` is exactly the stream of the
    /// combined 64-bit value, so the typing costs no byte-layout change
    /// while letting a steady-state leap advance the pair with carry
    /// (independent 32-bit deltas would corrupt it). The `WINDOWS`
    /// mirror saturates at `u32::MAX` (see `WindowMonitor::on_cycle`)
    /// and is typed accordingly.
    pub fn snap(&self, h: &mut StateHasher) {
        h.section("regfile");
        let word = |reg: Reg| self.regs[reg as usize].load(Ordering::Relaxed);
        let pair = |lo: Reg, hi: Reg| ((word(hi) as u64) << 32) | word(lo) as u64;
        let mut i = 0;
        while i < REG_COUNT {
            match i {
                x if x == Reg::TotalBytesLo as usize => {
                    h.write_counter_u64(pair(Reg::TotalBytesLo, Reg::TotalBytesHi));
                    i += 2;
                }
                x if x == Reg::TotalTxnsLo as usize => {
                    h.write_counter_u64(pair(Reg::TotalTxnsLo, Reg::TotalTxnsHi));
                    i += 2;
                }
                x if x == Reg::StallLo as usize => {
                    h.write_counter_u64(pair(Reg::StallLo, Reg::StallHi));
                    i += 2;
                }
                x if x == Reg::Windows as usize => {
                    h.write_counter_u32_sat(word(Reg::Windows));
                    i += 1;
                }
                _ => {
                    h.write_u32(self.regs[i].load(Ordering::Relaxed));
                    i += 1;
                }
            }
        }
    }

    /// Restores every register word from a serialized snapshot stream
    /// (the decode mirror of [`RegFile::snap`]). Interior mutability
    /// means this works through the shared handle both the gate and its
    /// driver hold — restoring once restores both views.
    ///
    /// # Errors
    ///
    /// Any [`fgqos_sim::SnapDecodeError`] aborts the whole load.
    pub fn snap_load(
        &self,
        r: &mut fgqos_sim::SnapReader<'_>,
    ) -> Result<(), fgqos_sim::SnapDecodeError> {
        r.section("regfile")?;
        for reg in &self.regs {
            reg.store(r.read_u32("regfile word")?, Ordering::Relaxed);
        }
        Ok(())
    }
}

impl SharedFork for RegFile {
    /// Copies every register word into an independent block (used when a
    /// snapshot fork remaps the MMIO shared between a gate and its
    /// driver).
    fn fork_value(&self) -> Self {
        RegFile {
            regs: std::array::from_fn(|i| AtomicU32::new(self.regs[i].load(Ordering::Relaxed))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_values() {
        let rf = RegFile::new();
        assert_eq!(rf.read(Reg::Ctrl), 0);
        assert_eq!(rf.read(Reg::Period), 1024);
        assert_eq!(rf.read(Reg::Budget), 1024);
        assert_eq!(rf.read(Reg::Status), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let rf = RegFile::new();
        rf.sw_write(Reg::Budget, 123_456);
        assert_eq!(rf.read(Reg::Budget), 123_456);
    }

    #[test]
    fn status_w1c_semantics() {
        let rf = RegFile::new();
        rf.set_bits(Reg::Status, STATUS_THROTTLED | STATUS_EXHAUSTED);
        // Clearing only EXHAUSTED leaves THROTTLED.
        rf.sw_write(Reg::Status, STATUS_EXHAUSTED);
        assert_eq!(rf.read(Reg::Status), STATUS_THROTTLED);
        // Writing zero clears nothing.
        rf.sw_write(Reg::Status, 0);
        assert_eq!(rf.read(Reg::Status), STATUS_THROTTLED);
    }

    #[test]
    fn wide_counter_roundtrip() {
        let rf = RegFile::new();
        let v = 0x1234_5678_9abc_def0u64;
        rf.write64(Reg::TotalBytesLo, Reg::TotalBytesHi, v);
        assert_eq!(rf.read64(Reg::TotalBytesLo, Reg::TotalBytesHi), v);
        assert_eq!(rf.read(Reg::TotalBytesLo), 0x9abc_def0);
        assert_eq!(rf.read(Reg::TotalBytesHi), 0x1234_5678);
    }

    #[test]
    fn bit_helpers() {
        let rf = RegFile::new();
        rf.set_bits(Reg::Ctrl, CTRL_ENABLE);
        assert_eq!(rf.read(Reg::Ctrl) & CTRL_ENABLE, CTRL_ENABLE);
        rf.clear_bits(Reg::Ctrl, CTRL_ENABLE);
        assert_eq!(rf.read(Reg::Ctrl) & CTRL_ENABLE, 0);
    }

    #[test]
    fn shared_handle_is_one_block() {
        let a = RegFile::shared();
        let b = Arc::clone(&a);
        a.sw_write(Reg::Period, 77);
        assert_eq!(b.read(Reg::Period), 77);
    }
}
